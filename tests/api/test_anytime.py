"""The anytime solve protocol: checkpoints, budgets, truncation.

Pins the tentpole contract of the budgeted execution layer:

* ``solve_iter`` yields valid checkpoints with monotone rounds and
  returns the same report ``solve`` does;
* ``solve`` with ``max_rounds`` set returns ``status="truncated"`` and
  a certified partial solution instead of raising, for *every*
  registered algorithm;
* budget edge cases — ``max_rounds=0``, a budget hit exactly at the
  termination round, truncated-run determinism at fixed seeds — and
  facade-vs-legacy parity unchanged when no budget is set.
"""

from dataclasses import replace

import pytest

from repro.api import (
    COMPLETE,
    TRUNCATED,
    Checkpoint,
    Instance,
    list_algorithms,
    solve,
    solve_iter,
)
from repro.graphs import (
    assign_edge_weights,
    assign_node_weights,
    check_independent_set,
    check_matching,
    gnp_graph,
    random_bipartite_graph,
)

SEED = 7


@pytest.fixture(scope="module")
def general_graph():
    g = gnp_graph(16, 0.25, seed=3)
    assign_node_weights(g, 32, seed=4)
    assign_edge_weights(g, 32, seed=5)
    return g


@pytest.fixture(scope="module")
def bipartite_graph():
    g = random_bipartite_graph(6, 6, 0.4, seed=6)
    assign_edge_weights(g, 16, seed=7)
    return g


def graph_for(spec, general, bipartite):
    return bipartite if spec.requires_bipartite else general


def drain(generator):
    """Consume a solve_iter stream; return (checkpoints, report)."""

    checkpoints = []
    while True:
        try:
            checkpoints.append(next(generator))
        except StopIteration as stop:
            return checkpoints, stop.value


def certify(report):
    if report.problem in ("maxis", "mis"):
        check_independent_set(report.instance.graph, report.solution)
    else:
        check_matching(report.instance.graph,
                       [tuple(e) for e in report.solution])


class TestSolveIter:
    def test_checkpoints_are_typed_and_monotone(self, general_graph):
        checkpoints, report = drain(
            solve_iter(Instance(general_graph, seed=SEED), "maxis-layers")
        )
        assert checkpoints, "no checkpoints emitted"
        rounds = [cp.rounds for cp in checkpoints]
        assert rounds == sorted(rounds)
        objectives = [cp.objective for cp in checkpoints]
        assert objectives == sorted(objectives), (
            "Algorithm 2's partial weight can only grow"
        )
        for cp in checkpoints:
            assert isinstance(cp, Checkpoint)
            assert cp.valid
            check_independent_set(general_graph, cp.solution)
        assert report.status == COMPLETE

    def test_stream_return_matches_solve(self, general_graph):
        instance = Instance(general_graph, seed=SEED)
        _, via_iter = drain(solve_iter(instance, "maxis-layers"))
        via_solve = solve(instance, "maxis-layers")
        assert via_iter.solution == via_solve.solution
        assert via_iter.rounds == via_solve.rounds
        assert via_iter.status == via_solve.status == COMPLETE

    def test_every_algorithm_is_iterable(self, general_graph,
                                         bipartite_graph):
        for spec in list_algorithms():
            graph = graph_for(spec, general_graph, bipartite_graph)
            checkpoints, report = drain(
                solve_iter(Instance(graph, seed=SEED), spec.name)
            )
            assert checkpoints, f"{spec.name}: no checkpoints"
            assert report.status == COMPLETE
            assert checkpoints[0].rounds == 0, (
                f"{spec.name}: the stream must open with the initial state"
            )

    def test_unknown_algorithm_raises_eagerly(self, general_graph):
        from repro.api import UnknownAlgorithm

        with pytest.raises(UnknownAlgorithm):
            solve_iter(Instance(general_graph), "no-such-algorithm")

    def test_simulator_final_checkpoint_is_flagged(self, general_graph):
        checkpoints, _ = drain(
            solve_iter(Instance(general_graph, seed=SEED), "maxis-layers")
        )
        assert checkpoints[-1].final
        assert not any(cp.final for cp in checkpoints[:-1])

    def test_budget_above_the_paper_default_replaces_it(self,
                                                        general_graph):
        # An explicit budget wins in both directions (legacy semantics):
        # a huge one must not be clamped down to the paper default.
        full = solve(Instance(general_graph, seed=SEED), "maxis-layers")
        huge = solve(
            Instance(general_graph, seed=SEED, max_rounds=10 ** 9),
            "maxis-layers",
        )
        assert huge.status == COMPLETE
        assert huge.solution == full.solution
        assert huge.rounds == full.rounds

    def test_phase_structured_algorithms_emit_real_phases(self,
                                                          general_graph):
        # The tentpole names these as per-phase (not begin/end) emitters.
        for name in ("maxis-layers", "matching-oneeps",
                     "matching-oneeps-congest"):
            spec = next(s for s in list_algorithms() if s.name == name)
            assert spec.run_iter is not None
            assert spec.describe()["anytime"] == "phases"
        coarse = next(s for s in list_algorithms()
                      if s.name == "matching-greedy")
        assert coarse.describe()["anytime"] == "coarse"


class TestBudgetEnforcement:
    def test_truncated_instead_of_raising_for_every_algorithm(
            self, general_graph, bipartite_graph):
        for spec in list_algorithms():
            graph = graph_for(spec, general_graph, bipartite_graph)
            report = solve(Instance(graph, seed=SEED, max_rounds=1),
                           spec.name)
            assert report.status in (COMPLETE, TRUNCATED)
            assert report.rounds <= 1, spec.name
            certify(report)
            if report.status == TRUNCATED:
                assert report.bound is None, (
                    f"{spec.name}: a truncated run must not claim the "
                    "guarantee bound"
                )

    def test_max_rounds_zero(self, general_graph):
        report = solve(Instance(general_graph, seed=SEED, max_rounds=0),
                       "maxis-layers")
        assert report.status == TRUNCATED
        assert report.rounds == 0
        assert report.solution == frozenset()
        assert report.objective == 0

    def test_budget_exactly_at_termination_round_is_complete(
            self, general_graph):
        full = solve(Instance(general_graph, seed=SEED), "maxis-layers")
        exact = solve(
            Instance(general_graph, seed=SEED, max_rounds=full.rounds),
            "maxis-layers",
        )
        assert exact.status == COMPLETE
        assert exact.solution == full.solution
        assert exact.rounds == full.rounds
        assert exact.bound == full.bound

    def test_one_round_short_truncates(self, general_graph):
        full = solve(Instance(general_graph, seed=SEED), "maxis-layers")
        short = solve(
            Instance(general_graph, seed=SEED, max_rounds=full.rounds - 1),
            "maxis-layers",
        )
        assert short.status == TRUNCATED
        assert short.rounds <= full.rounds - 1
        assert short.objective <= full.objective
        check_independent_set(general_graph, short.solution)

    def test_truncated_runs_are_deterministic(self, general_graph):
        instance = Instance(general_graph, seed=SEED, max_rounds=5)
        first = solve(instance, "maxis-layers")
        second = solve(instance, "maxis-layers")
        assert first.status == second.status == TRUNCATED
        assert first.solution == second.solution
        assert first.objective == second.objective
        assert first.rounds == second.rounds

    def test_truncation_is_a_prefix_of_the_full_run(self, general_graph):
        # Fixed seed: the budgeted run executes a prefix of the same
        # random stream, so its partial solution is a subset of every
        # longer run's state at the same round.
        full = solve(Instance(general_graph, seed=SEED), "maxis-layers")
        previous = frozenset()
        for budget in range(0, full.rounds + 1, 2):
            partial = solve(
                Instance(general_graph, seed=SEED, max_rounds=budget),
                "maxis-layers",
            )
            assert previous <= partial.solution
            previous = partial.solution
        assert previous <= full.solution

    def test_oneeps_phase_grain_budget(self, general_graph):
        full = solve(Instance(general_graph, seed=SEED, eps=0.5),
                     "matching-oneeps")
        budget = max(1, full.rounds - 1)
        short = solve(
            Instance(general_graph, seed=SEED, eps=0.5, max_rounds=budget),
            "matching-oneeps",
        )
        assert short.status == TRUNCATED
        assert short.rounds <= budget
        check_matching(general_graph, [tuple(e) for e in short.solution])
        # extras survive truncation so Theorem B.4 accounting stays
        # inspectable mid-run
        assert "deactivated" in short.extras

    def test_as_row_surfaces_truncation(self, general_graph):
        row = solve(Instance(general_graph, seed=SEED, max_rounds=2),
                    "maxis-layers").as_row()
        assert row["status"] == TRUNCATED
        full_row = solve(Instance(general_graph, seed=SEED),
                         "maxis-layers").as_row()
        assert "status" not in full_row, (
            "complete runs keep the historical row shape"
        )


class TestNoBudgetParity:
    def test_facade_unchanged_without_budget(self, general_graph):
        # replace() with max_rounds=None must be a no-op relative to a
        # fresh unbudgeted instance — the legacy-parity suite pins the
        # facade against repro.core; this pins budget-path neutrality.
        base = Instance(general_graph, seed=SEED)
        explicit = replace(base, max_rounds=None)
        for name in ("maxis-layers", "matching-oneeps",
                     "matching-lines", "mis-luby"):
            a = solve(base, name)
            b = solve(explicit, name)
            assert a.solution == b.solution
            assert a.rounds == b.rounds
            assert a.status == b.status == COMPLETE
            assert a.ledger_counts() == b.ledger_counts()


class TestBatchStatuses:
    def test_truncated_tasks_aggregate_not_fail(self, general_graph):
        from repro.api import solve_many

        instances = [
            Instance(general_graph, seed=SEED, max_rounds=budget)
            for budget in (0, 3, None)
        ]
        report = solve_many(instances, "maxis-layers", executor="serial")
        assert not report.failures
        statuses = [item.status for item in report]
        assert statuses == [TRUNCATED, TRUNCATED, COMPLETE]
        assert [item.report.status for item in report.truncated] == \
            [TRUNCATED, TRUNCATED]
        summary = report.summary()
        assert summary["statuses"] == {TRUNCATED: 2, COMPLETE: 1}
        assert summary["failed"] == 0

    def test_failed_task_status(self, general_graph):
        from repro.api.batch import BatchItem

        item = BatchItem(index=0, fingerprint="x", algorithm="a",
                         error="ValueError: boom")
        assert item.status == "failed"
        assert not item.ok
