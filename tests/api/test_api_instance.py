"""Tests for :class:`repro.api.Instance` and the instance helpers."""

import dataclasses

import pytest

from repro.api import CONGEST, LOCAL, MPC, Instance, random_instance
from repro.errors import InvalidInstance
from repro.graphs import gnp_graph, max_degree, node_weight


@pytest.fixture
def graph():
    return gnp_graph(12, 0.3, seed=1)


class TestValidation:
    def test_unknown_model_rejected(self, graph):
        with pytest.raises(InvalidInstance):
            Instance(graph, model="ASYNC")

    def test_nonpositive_eps_rejected(self, graph):
        with pytest.raises(InvalidInstance):
            Instance(graph, eps=0.0)
        with pytest.raises(InvalidInstance):
            Instance(graph, eps=-1.0)

    def test_frozen(self, graph):
        instance = Instance(graph)
        with pytest.raises(dataclasses.FrozenInstanceError):
            instance.seed = 7

    def test_mpc_model_is_normalized(self, graph):
        assert Instance(graph, model="mpc").model == MPC
        assert Instance(graph, model="congest").model == CONGEST

    def test_mpc_topology_validated(self, graph):
        with pytest.raises(InvalidInstance):
            Instance(graph, model=MPC, machines=0)
        with pytest.raises(InvalidInstance):
            Instance(graph, model=MPC, delta=0.0)
        with pytest.raises(InvalidInstance):
            Instance(graph, model=MPC, delta=1.5)
        ok = Instance(graph, model=MPC, machines=3, delta=0.5)
        assert (ok.machines, ok.delta) == (3, 0.5)


class TestDerivedViews:
    def test_counts_and_max_degree(self, graph):
        instance = Instance(graph)
        assert instance.n == graph.number_of_nodes()
        assert instance.m == graph.number_of_edges()
        assert instance.max_degree == max_degree(graph)

    def test_with_model(self, graph):
        pinned = Instance(graph).with_model(LOCAL)
        assert pinned.model == LOCAL
        assert Instance(graph).model is None  # original untouched

    def test_network_defaults_to_congest(self, graph):
        assert Instance(graph).network().model == CONGEST
        assert Instance(graph, model=LOCAL).network().model == LOCAL

    def test_network_is_seeded_and_metered(self, graph):
        network = Instance(graph, seed=9).network()
        assert network.seed == 9
        assert network.metrics.messages == 0


class TestRandomInstance:
    def test_maxis_gets_node_weights(self):
        instance = random_instance("maxis", n=10, p=0.3, max_weight=8,
                                   seed=4)
        weights = {node_weight(instance.graph, v)
                   for v in instance.graph.nodes}
        assert weights and weights <= set(range(1, 9))

    def test_matching_gets_edge_weights(self):
        instance = random_instance("matching", n=10, p=0.3, max_weight=8,
                                   seed=4)
        assert all("weight" in d
                   for _, _, d in instance.graph.edges(data=True))

    def test_cli_seed_layout(self):
        """Graph seed, weight seed + 1, algorithm seed + 2 (the historic
        ``python -m repro`` layout the parity guarantee relies on)."""

        instance = random_instance("maxis", n=10, p=0.3, seed=4)
        assert instance.seed == 6
        reference = gnp_graph(10, 0.3, seed=4)
        assert set(instance.graph.edges) == set(reference.edges)

    def test_unknown_problem_rejected(self):
        with pytest.raises(InvalidInstance):
            random_instance("vertex-cover")
