"""Tests for the :mod:`repro.api` algorithm registry."""

import json

import pytest

from repro.api import (
    AlgorithmSpec,
    Instance,
    UnknownAlgorithm,
    UnsupportedModel,
    cli_names,
    get_algorithm,
    list_algorithms,
    register_algorithm,
    registry_as_json,
)
from repro.errors import ReproError


class TestLookup:
    def test_get_by_registry_name(self):
        spec = get_algorithm("maxis-layers")
        assert spec.problem == "maxis"
        assert spec.cli == "layers"

    def test_get_by_cli_name_within_problem(self):
        assert get_algorithm("layers", problem="maxis").name == "maxis-layers"
        assert (get_algorithm("oneeps", problem="matching").name
                == "matching-oneeps")

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownAlgorithm) as excinfo:
            get_algorithm("bogus")
        assert "registered:" in str(excinfo.value)

    def test_unknown_algorithm_is_repro_error_and_key_error(self):
        with pytest.raises(ReproError):
            get_algorithm("bogus")
        with pytest.raises(KeyError):
            get_algorithm("bogus")

    def test_problem_scoping_rejects_cross_problem_name(self):
        with pytest.raises(UnknownAlgorithm):
            get_algorithm("layers", problem="matching")


class TestListing:
    def test_sorted_and_unique(self):
        names = [spec.name for spec in list_algorithms()]
        assert names == sorted(names)
        assert len(names) == len(set(names))

    def test_problem_filter(self):
        maxis = list_algorithms("maxis")
        assert maxis and all(s.problem == "maxis" for s in maxis)

    def test_cli_names_exclude_non_cli_specs(self):
        matching = cli_names("matching")
        assert "lines" in matching and "oneeps" in matching
        # bipartite-only algorithms stay off the G(n,p) CLI path
        assert all("bipartite" not in name for name in matching)

    def test_paper_algorithms_all_registered(self):
        names = {spec.name for spec in list_algorithms()}
        assert {
            "maxis-layers", "maxis-coloring", "matching-lines",
            "matching-groups", "matching-fast2eps",
            "matching-fast2eps-weighted", "matching-oneeps",
            "matching-oneeps-congest", "matching-proposal",
        } <= names


class TestRegistryJson:
    def test_round_trips_through_json(self):
        payload = json.loads(json.dumps(registry_as_json()))
        assert [entry["name"] for entry in payload] == [
            spec.name for spec in list_algorithms()
        ]

    def test_entries_carry_capability_flags(self):
        by_name = {entry["name"]: entry for entry in registry_as_json()}
        assert by_name["maxis-coloring"]["deterministic"] is True
        assert by_name["matching-fast2eps"]["uses_eps"] is True
        assert by_name["matching-fast2eps-weighted"]["weighted"] is True
        assert by_name["matching-proposal-bipartite"][
            "requires_bipartite"] is True


class TestRegistration:
    def test_duplicate_name_rejected(self):
        spec = get_algorithm("maxis-layers")
        with pytest.raises(ValueError):
            register_algorithm(spec)

    def test_model_resolution(self, weighted_graph):
        spec = get_algorithm("matching-oneeps")
        assert spec.resolve_model(Instance(weighted_graph)) == "LOCAL"
        with pytest.raises(UnsupportedModel):
            spec.resolve_model(Instance(weighted_graph, model="CONGEST"))

    def test_spec_is_frozen(self):
        spec = get_algorithm("maxis-layers")
        assert isinstance(spec, AlgorithmSpec)
        with pytest.raises(AttributeError):
            spec.name = "other"
