"""Tests for :func:`repro.api.solve` and :class:`repro.api.SolveReport`."""

import pytest

from repro.api import Instance, SolveReport, UnsupportedModel, solve
from repro.errors import AlgorithmContractViolation, InvalidInstance
from repro.graphs import max_degree


class TestSolve:
    def test_accepts_bare_graph(self, weighted_graph):
        report = solve(weighted_graph, "maxis-layers")
        assert isinstance(report, SolveReport)
        assert report.instance.graph is weighted_graph
        assert report.size == len(report.solution)

    def test_model_is_pinned_on_the_report(self, weighted_graph):
        report = solve(Instance(weighted_graph), "matching-oneeps")
        assert report.model == "LOCAL"
        assert report.instance.model == "LOCAL"

    def test_explicit_unsupported_model_rejected(self, weighted_graph):
        with pytest.raises(UnsupportedModel):
            solve(Instance(weighted_graph, model="CONGEST"),
                  "matching-oneeps")

    def test_unsupported_model_is_an_instance_error(self, weighted_graph):
        # catchable alongside other bad-instance conditions, and NOT an
        # unknown-name error — the algorithm resolved fine
        with pytest.raises(InvalidInstance):
            solve(Instance(weighted_graph, model="CONGEST"),
                  "matching-oneeps")

    def test_cli_short_names_resolve_with_problem(self, weighted_graph):
        report = solve(Instance(weighted_graph, seed=2), "layers",
                       problem="maxis")
        assert report.algorithm == "maxis-layers"

    def test_options_forward_to_the_implementation(self, weighted_graph):
        from repro.core import LayerTrace

        trace = LayerTrace()
        report = solve(Instance(weighted_graph, seed=2), "maxis-layers",
                       trace=trace)
        assert report.extras["trace"] is trace
        assert trace.top_layer_series()

    def test_solution_is_certified(self, weighted_graph):
        report = solve(Instance(weighted_graph, seed=1), "maxis-layers")
        assert report.certify() is report


class TestSolveReport:
    @pytest.fixture
    def report(self, weighted_graph):
        return solve(Instance(weighted_graph, seed=3), "maxis-layers")

    def test_as_row_shape(self, report, weighted_graph):
        row = report.as_row()
        assert row["problem"] == "maxis"
        assert row["algorithm"] == "maxis-layers"
        assert row["n"] == weighted_graph.number_of_nodes()
        assert row["delta"] == max_degree(weighted_graph)
        assert row["bound"] == float(max_degree(weighted_graph))
        assert "optimum" not in row

    def test_as_row_with_oracle(self, report):
        row = report.as_row(oracle=True)
        assert row["optimum"] >= row["objective"]
        assert row["ratio"] >= 1.0

    def test_compare_checks_the_guarantee(self, report):
        comparison = report.compare()
        assert comparison["within_bound"] is True
        assert comparison["optimum"] <= report.bound * report.objective

    def test_ledger_counts_empty_without_ledger(self, report):
        assert report.ledger_counts() == {}

    def test_ledger_counts_total(self, weighted_graph):
        report = solve(Instance(weighted_graph, seed=3),
                       "matching-fast2eps")
        counts = report.ledger_counts()
        assert counts["total"] == report.rounds

    def test_metrics_attached_for_simulated_runs(self, report):
        assert report.metrics is not None
        assert report.metrics.messages > 0

    def test_certify_rejects_tampered_solution(self, weighted_graph):
        report = solve(Instance(weighted_graph, seed=3), "maxis-layers")
        u, v = next(iter(weighted_graph.edges))
        report.solution = frozenset(report.solution | {u, v})
        with pytest.raises(AlgorithmContractViolation):
            report.certify()

    def test_oracle_cache_shared_across_reports(self, weighted_graph):
        first = solve(Instance(weighted_graph, seed=1), "maxis-layers")
        second = solve(Instance(weighted_graph, seed=2), "maxis-coloring")
        assert first.optimum() == second.optimum()

    def test_oracle_cache_invalidated_by_reweighting(self):
        from repro.graphs import assign_node_weights, gnp_graph
        from repro.mis import exact_mwis, mwis_weight

        graph = assign_node_weights(gnp_graph(12, 0.3, seed=1), 8, seed=2)
        stale = solve(Instance(graph, seed=1),
                      "maxis-layers").compare()["optimum"]
        assign_node_weights(graph, 64, seed=99)
        fresh = solve(Instance(graph, seed=1),
                      "maxis-layers").compare()["optimum"]
        assert fresh == mwis_weight(graph, exact_mwis(graph))
        assert fresh != stale  # weights in [1,8] vs [1,64] must differ

    def test_compare_memoised_on_the_report(self):
        from repro.graphs import assign_node_weights, gnp_graph

        graph = assign_node_weights(gnp_graph(12, 0.3, seed=4), 8, seed=5)
        report = solve(Instance(graph, seed=1), "maxis-layers")
        first = report.compare()
        # Re-weighting in place changes the oracle fingerprint, so a
        # *fresh* report recomputes — but the same report must serve
        # its memo instead of re-running the oracle pipeline.
        assign_node_weights(graph, 64, seed=99)
        assert report.compare() == first
        assert report.optimum() == first["optimum"]
        fresh = solve(Instance(graph, seed=1), "maxis-layers")
        assert fresh.compare()["optimum"] != first["optimum"]

    def test_compare_returns_a_private_copy(self, report):
        first = report.compare()
        first["optimum"] = -1
        assert report.compare()["optimum"] != -1

    def test_mis_objective_is_cardinality(self, weighted_graph):
        report = solve(Instance(weighted_graph, seed=3), "mis-luby")
        assert report.objective == report.size
        assert report.bound is None
        assert report.compare()["within_bound"] is True
