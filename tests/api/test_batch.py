"""Tests for the batch execution engine (``repro.api.batch``)."""

import multiprocessing
import os

import pytest

from repro.api import (
    Instance,
    instance_fingerprint,
    random_instance,
    solve,
    solve_many,
)
from repro.api.batch import execute_indexed
from repro.graphs import gnp_graph


def _instances(count=3, n=14, p=0.25):
    return [random_instance("maxis", n=n, p=p, seed=s) for s in range(count)]


def _exit_on_sentinel(x):
    """Module-level (picklable) task that hard-kills its worker on -1."""

    if x == -1:
        os._exit(1)
    return x


class TestInstanceFingerprint:
    def test_stable_across_calls(self):
        inst = random_instance("maxis", n=12, p=0.3, seed=4)
        assert instance_fingerprint(inst) == instance_fingerprint(inst)

    def test_rebuilt_instance_matches(self):
        a = random_instance("maxis", n=12, p=0.3, seed=4)
        b = random_instance("maxis", n=12, p=0.3, seed=4)
        assert a.graph is not b.graph
        assert instance_fingerprint(a) == instance_fingerprint(b)

    def test_sensitive_to_seed_and_structure(self):
        base = random_instance("maxis", n=12, p=0.3, seed=4)
        other_seed = random_instance("maxis", n=12, p=0.3, seed=5)
        assert instance_fingerprint(base) != instance_fingerprint(other_seed)
        reweighted = Instance(gnp_graph(12, 0.3, seed=1), seed=base.seed)
        assert instance_fingerprint(base) != instance_fingerprint(reweighted)

    def test_sensitive_to_model_and_eps(self):
        g = gnp_graph(10, 0.3, seed=1)
        assert (instance_fingerprint(Instance(g, model="LOCAL"))
                != instance_fingerprint(Instance(g, model="CONGEST")))
        assert (instance_fingerprint(Instance(g, eps=0.5))
                != instance_fingerprint(Instance(g, eps=0.25)))


class TestExecuteIndexed:
    def test_serial_preserves_order(self):
        results = execute_indexed(lambda x: x * 2, [3, 1, 2])
        assert results == [(6, None), (2, None), (4, None)]

    def test_serial_isolates_failures(self):
        def fn(x):
            if x == 1:
                raise ValueError("boom")
            return x

        results = execute_indexed(fn, [0, 1, 2])
        assert results[0] == (0, None)
        assert results[1][0] is None
        assert "ValueError: boom" in results[1][1]
        assert results[2] == (2, None)

    def test_thread_backend_matches_serial(self):
        tasks = list(range(23))
        serial = execute_indexed(lambda x: x * x, tasks)
        threaded = execute_indexed(lambda x: x * x, tasks,
                                   executor="thread", workers=3,
                                   chunksize=2)
        assert threaded == serial

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            execute_indexed(lambda x: x, [1], executor="carrier-pigeon")

    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="worker-death test pickles a test-module function",
    )
    def test_dead_worker_does_not_sink_the_batch(self):
        # The sentinel task kills its worker outright, bypassing the
        # in-worker try/except.  The contract: execute_indexed still
        # returns (no BrokenProcessPool escapes), every slot is
        # filled, the sentinel's slot records the breakage, and any
        # chunk that finished before the pool broke keeps its result.
        results = execute_indexed(_exit_on_sentinel, [1, -1, 2],
                                  executor="process", workers=2,
                                  chunksize=1)
        assert len(results) == 3
        assert all(slot is not None for slot in results)
        assert results[1][0] is None
        assert "worker died" in results[1][1]
        for value, (result, error) in zip((1, 2), (results[0], results[2])):
            assert result == value or "worker died" in error


class TestSolveMany:
    def test_matches_individual_solves(self):
        instances = _instances()
        batch = solve_many(instances, "maxis-layers", executor="serial")
        assert len(batch) == len(instances)
        for inst, item in zip(instances, batch):
            direct = solve(inst, "maxis-layers")
            assert item.ok
            assert item.report.solution == direct.solution
            assert item.report.rounds == direct.rounds

    def test_cross_product_order_is_instance_major(self):
        instances = _instances(2)
        batch = solve_many(instances, ["maxis-layers", "maxis-coloring"],
                           executor="serial")
        assert [item.algorithm for item in batch] == [
            "maxis-layers", "maxis-coloring",
            "maxis-layers", "maxis-coloring",
        ]
        assert batch.items[0].fingerprint == batch.items[1].fingerprint
        assert batch.items[0].fingerprint != batch.items[2].fingerprint

    def test_process_pool_matches_serial(self):
        instances = _instances()
        serial = solve_many(instances, "maxis-layers", executor="serial")
        pooled = solve_many(instances, "maxis-layers",
                            executor="process", workers=2)
        assert [i.fingerprint for i in serial] == [
            i.fingerprint for i in pooled
        ]
        assert [i.report.solution for i in serial] == [
            i.report.solution for i in pooled
        ]
        assert [i.report.objective for i in serial] == [
            i.report.objective for i in pooled
        ]

    def test_thread_pool_matches_serial(self):
        instances = _instances()
        serial = solve_many(instances, "maxis-layers", executor="serial")
        threaded = solve_many(instances, "maxis-layers",
                              executor="thread", workers=2)
        assert [i.report.solution for i in serial] == [
            i.report.solution for i in threaded
        ]

    def test_failure_isolation(self):
        instances = _instances(2)
        batch = solve_many(instances, ["maxis-layers", "no-such-algo"],
                           executor="serial")
        assert len(batch.ok) == 2
        assert len(batch.failures) == 2
        for item in batch.failures:
            assert item.report is None
            assert "no-such-algo" in item.error
        # healthy siblings are untouched
        direct = solve(instances[0], "maxis-layers")
        assert batch.ok[0].report.solution == direct.solution

    def test_isolate_seeds_gives_distinct_streams(self):
        inst = random_instance("maxis", n=14, p=0.25, seed=0)
        batch = solve_many([inst] * 4, "maxis-layers", isolate_seeds=True)
        seeds = [item.report.instance.seed for item in batch]
        assert len(set(seeds)) == 4
        fingerprints = [item.fingerprint for item in batch]
        assert len(set(fingerprints)) == 4
        # and the derivation is itself deterministic
        again = solve_many([inst] * 4, "maxis-layers", isolate_seeds=True)
        assert [i.report.instance.seed for i in again] == seeds


class TestBatchReport:
    def test_summary_aggregates(self):
        batch = solve_many(_instances(), "maxis-layers", executor="serial")
        summary = batch.summary()
        objectives = [item.report.objective for item in batch]
        assert summary["tasks"] == 3
        assert summary["ok"] == 3
        assert summary["failed"] == 0
        assert summary["objective"]["total"] == sum(objectives)
        assert summary["objective"]["min"] == min(objectives)
        assert summary["objective"]["max"] == max(objectives)
        assert summary["rounds_total"] == sum(
            item.report.rounds for item in batch
        )
        assert summary["messages_total"] > 0

    def test_get_by_fingerprint(self):
        batch = solve_many(_instances(2), "maxis-layers", executor="serial")
        item = batch.items[1]
        assert batch.get(item.fingerprint, "maxis-layers") is item
        with pytest.raises(KeyError):
            batch.get("ffffffffffffffff", "maxis-layers")

    def test_reports_and_latencies_cover_successes_only(self):
        batch = solve_many(_instances(2), ["maxis-layers", "no-such-algo"],
                           executor="serial")
        assert len(batch.reports) == 2
        assert len(batch.latencies()) == 2
        assert all(sec >= 0 for sec in batch.latencies())
        assert batch.elapsed > 0
        assert batch.trials_per_second() > 0


class TestWarmStart:
    """``solve_many(..., warm_start=...)`` — resuming a budgeted batch."""

    def _grid(self, budget):
        from dataclasses import replace

        return [
            replace(random_instance("matching", n=20, p=0.3, seed=s),
                    max_rounds=budget)
            for s in (1, 2, 3)
        ]

    def test_truncated_batch_resumes_bit_identically(self):
        cut = solve_many(self._grid(8), "matching-proposal",
                         executor="serial")
        assert cut.truncated  # the budget really bit
        resumed = solve_many(self._grid(None), "matching-proposal",
                             executor="serial", warm_start=cut)
        cold = solve_many(self._grid(None), "matching-proposal",
                          executor="serial")
        for warm_item, cold_item in zip(resumed, cold):
            assert warm_item.report.status == "complete"
            assert warm_item.report.solution == cold_item.report.solution
            assert warm_item.report.rounds == cold_item.report.rounds
            assert warm_item.report.objective == cold_item.report.objective
        assert all(item.warm_started for item in resumed)
        assert resumed.summary()["warm_started"] == 3

    def test_complete_reports_pass_through_without_rerun(self):
        done = solve_many(self._grid(None), "matching-proposal",
                          executor="serial")
        again = solve_many(self._grid(None), "matching-proposal",
                           executor="serial", warm_start=done)
        for prior, item in zip(done, again):
            assert item.report is prior.report  # same object: no re-solve
            assert item.warm_started
            assert item.seconds == 0.0

    def test_mixed_sources_per_task(self):
        cut = solve_many(self._grid(8), "matching-proposal",
                         executor="serial")
        sources = [
            cut.items[0],                       # BatchItem
            cut.items[1].report.resume_state,   # raw payload dict
            None,                               # cold solve
        ]
        resumed = solve_many(self._grid(None), "matching-proposal",
                             executor="serial", warm_start=sources)
        cold = solve_many(self._grid(None), "matching-proposal",
                          executor="serial")
        assert [item.warm_started for item in resumed] == \
            [True, True, False]
        for warm_item, cold_item in zip(resumed, cold):
            assert warm_item.report.solution == cold_item.report.solution
            assert warm_item.report.rounds == cold_item.report.rounds

    def test_failed_item_source_degrades_to_cold_solve(self):
        from repro.api.batch import BatchItem

        failed = BatchItem(index=0, fingerprint="dead",
                           algorithm="matching-proposal",
                           error="RuntimeError: boom")
        grid = self._grid(None)[:1]
        resumed = solve_many(grid, "matching-proposal",
                             executor="serial", warm_start=[failed])
        cold = solve_many(grid, "matching-proposal", executor="serial")
        assert not resumed.items[0].warm_started
        assert resumed.items[0].report.solution == \
            cold.items[0].report.solution

    def test_misaligned_warm_column_raises(self):
        cut = solve_many(self._grid(8), "matching-proposal",
                         executor="serial")
        with pytest.raises(ValueError, match="columns must align"):
            solve_many(self._grid(None)[:2], "matching-proposal",
                       executor="serial", warm_start=cut)

    def test_unsupported_source_type_raises(self):
        with pytest.raises(TypeError, match="cannot warm-start"):
            solve_many(self._grid(None)[:1], "matching-proposal",
                       executor="serial", warm_start=[42])

    def test_cold_batch_summary_keeps_historical_shape(self):
        summary = solve_many(self._grid(None), "matching-proposal",
                             executor="serial").summary()
        assert "warm_started" not in summary
