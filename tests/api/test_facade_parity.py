"""Facade ↔ legacy parity: ``repro.api.solve`` must reproduce every
legacy entry point bit-for-bit at a fixed seed.

For each registered :class:`~repro.api.AlgorithmSpec` there is one
legacy runner below that calls the historical ``repro.core`` /
``repro.mis`` / ``repro.matching`` function with the same seed; the
test asserts identical solution sets, objectives, round counts and
(where the legacy result carries a :class:`~repro.congest.RoundLedger`)
identical per-phase ledger counts.  A new registry entry without a
legacy runner fails the completeness test, so parity coverage cannot
silently rot.
"""

import pytest

from repro.api import Instance, list_algorithms, solve
from repro.congest import RoundLedger
from repro.core import (
    bipartite_matching_1eps,
    bipartite_proposal_matching,
    congest_matching_1eps,
    fast_matching_2eps,
    fast_matching_weighted_2eps,
    general_proposal_matching,
    greedy_mis,
    improved_nearly_maximal_is,
    local_matching_1eps,
    nearly_maximal_hypergraph_matching,
    matching_local_ratio,
    maxis_local_ratio_coloring,
    maxis_local_ratio_layers,
    nearly_maximal_matching,
    weight_group_matching,
)
from repro.graphs import (
    assign_edge_weights,
    assign_node_weights,
    gnp_graph,
    random_bipartite_graph,
)
from repro.matching import (
    bipartite_sides,
    greedy_weighted_matching,
    israeli_itai_matching,
    matching_weight,
)
from repro.mis import luby_mis

SEED = 11
EPS = 0.5


@pytest.fixture(scope="module")
def general_graph():
    g = gnp_graph(18, 0.22, seed=5)
    assign_node_weights(g, 32, seed=6)
    assign_edge_weights(g, 32, seed=7)
    return g


@pytest.fixture(scope="module")
def bipartite_graph():
    g = random_bipartite_graph(8, 8, 0.35, seed=9)
    assign_edge_weights(g, 16, seed=10)
    return g


def _legacy_maxis_layers(g):
    r = maxis_local_ratio_layers(g, seed=SEED)
    return r.independent_set, r.weight, r.rounds, None


def _legacy_maxis_coloring(g):
    r = maxis_local_ratio_coloring(g)
    return r.independent_set, r.weight, r.accounted_rounds, None


def _legacy_mis_luby(g):
    mis, rounds = luby_mis(g, seed=SEED)
    return mis, len(mis), rounds, None


def _legacy_matching_lines(g):
    r = matching_local_ratio(g, method="layers", seed=SEED)
    return r.matching, r.weight, r.rounds, None


def _legacy_matching_groups(g):
    r = weight_group_matching(g, seed=SEED)
    return r.matching, r.weight, r.rounds, r.ledger


def _legacy_fast2eps(g):
    r = fast_matching_2eps(g, eps=EPS, seed=SEED)
    return r.matching, len(r.matching), r.rounds, r.ledger


def _legacy_fast2eps_weighted(g):
    r = fast_matching_weighted_2eps(g, eps=EPS, seed=SEED)
    return r.matching, r.weight, r.rounds, r.ledger


def _legacy_oneeps(g):
    r = local_matching_1eps(g, eps=EPS, seed=SEED)
    return r.matching, r.cardinality, r.rounds, r.ledger


def _legacy_oneeps_congest(g):
    r = congest_matching_1eps(g, eps=EPS, seed=SEED)
    return r.matching, r.cardinality, r.rounds, r.ledger


def _legacy_oneeps_bipartite(g):
    left, right = bipartite_sides(g)
    ledger = RoundLedger()
    matching, _deactivated = bipartite_matching_1eps(
        g, left, right, eps=EPS, seed=SEED, ledger=ledger,
    )
    return matching, len(matching), ledger.total, ledger


def _legacy_proposal(g):
    matching, rounds, ledger = general_proposal_matching(
        g, eps=EPS, seed=SEED,
    )
    return matching, len(matching), rounds, ledger


def _legacy_proposal_bipartite(g):
    left, right = bipartite_sides(g)
    r = bipartite_proposal_matching(g, left, right, eps=EPS, seed=SEED)
    return r.matching, len(r.matching), r.rounds, None


def _legacy_israeli_itai(g):
    matching, rounds = israeli_itai_matching(g, seed=SEED)
    return matching, len(matching), rounds, None


def _legacy_greedy(g):
    matching = greedy_weighted_matching(g)
    return matching, matching_weight(g, matching), 0, None


def _legacy_nearly_maximal_matching(g):
    matching, _unlucky, rounds = nearly_maximal_matching(g, seed=SEED)
    return matching, len(matching), rounds, None


def _legacy_mis_nearly_maximal(g):
    result = improved_nearly_maximal_is(g, seed=SEED)
    return (result.independent_set, len(result.independent_set),
            result.rounds, None)


def _legacy_greedy_maxis(g):
    result = greedy_mis(g)
    return (result.independent_set, result.weight, result.rounds,
            result.ledger)


def _legacy_hypergraph(g):
    hyperedges = [frozenset(edge) for edge in sorted(
        (tuple(sorted(e, key=repr)) for e in g.edges), key=repr)]
    result = nearly_maximal_hypergraph_matching(
        hyperedges, rank=2, seed=SEED)
    matching = frozenset(hyperedges[i] for i in result.matched_edges)
    return matching, len(matching), result.iterations, None


LEGACY = {
    "maxis-layers": _legacy_maxis_layers,
    "maxis-coloring": _legacy_maxis_coloring,
    "mis-luby": _legacy_mis_luby,
    "matching-lines": _legacy_matching_lines,
    "matching-groups": _legacy_matching_groups,
    "matching-fast2eps": _legacy_fast2eps,
    "matching-fast2eps-weighted": _legacy_fast2eps_weighted,
    "matching-oneeps": _legacy_oneeps,
    "matching-oneeps-congest": _legacy_oneeps_congest,
    "matching-oneeps-bipartite": _legacy_oneeps_bipartite,
    "matching-proposal": _legacy_proposal,
    "matching-proposal-bipartite": _legacy_proposal_bipartite,
    "matching-israeli-itai": _legacy_israeli_itai,
    "matching-greedy": _legacy_greedy,
    "matching-nearly-maximal": _legacy_nearly_maximal_matching,
    "matching-hypergraph": _legacy_hypergraph,
    "mis-nearly-maximal": _legacy_mis_nearly_maximal,
    "maxis-greedy": _legacy_greedy_maxis,
}


def test_every_registered_algorithm_has_a_parity_runner():
    registered = {spec.name for spec in list_algorithms()}
    assert registered == set(LEGACY), (
        "registry and parity suite diverged — add a legacy runner for "
        f"{sorted(registered ^ set(LEGACY))}"
    )


@pytest.mark.parametrize("name", sorted(LEGACY))
def test_solve_matches_legacy_entry_point(name, general_graph,
                                          bipartite_graph):
    spec = next(s for s in list_algorithms() if s.name == name)
    graph = bipartite_graph if spec.requires_bipartite else general_graph
    expected_solution, expected_objective, expected_rounds, ledger = (
        LEGACY[name](graph)
    )

    report = solve(Instance(graph, eps=EPS, seed=SEED), name)

    assert report.solution == frozenset(expected_solution)
    assert report.objective == expected_objective
    assert report.rounds == expected_rounds
    if ledger is not None:
        assert report.ledger_counts() == ledger.as_dict()


@pytest.mark.parametrize("name", sorted(LEGACY))
def test_solve_is_reproducible(name, general_graph, bipartite_graph):
    spec = next(s for s in list_algorithms() if s.name == name)
    graph = bipartite_graph if spec.requires_bipartite else general_graph
    first = solve(Instance(graph, eps=EPS, seed=SEED), name)
    second = solve(Instance(graph, eps=EPS, seed=SEED), name)
    assert first.solution == second.solution
    assert first.rounds == second.rounds
    assert first.ledger_counts() == second.ledger_counts()
