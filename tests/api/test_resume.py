"""The checkpoint/resume protocol: **resume ≡ never-stopped**.

The registry-wide contract this suite pins (the PR-5 tentpole):

* for *every* registered algorithm, truncating at a round budget ``k``
  and resuming the truncated report reproduces the unbounded run
  bit-for-bit — same solution, objective, round count and ledger
  breakdown — with the stop point swept over ``k ∈ {0, 1, mid,
  last-phase}`` for every phase-structured (``run_iter``) entry;
* ``resume_state`` payloads survive a ``json.dumps``/``loads`` round
  trip and still continue identically (persisted warm starts);
* multi-hop resume (truncate → resume under a new budget → truncate →
  resume to completion) composes, with the budget staying cumulative;
* the error paths are typed: resuming a ``status="complete"`` report
  raises :class:`~repro.errors.NotResumable`, a mismatched instance
  fingerprint raises :class:`~repro.errors.ResumeMismatch`.

Like ``test_facade_parity.py`` gates registration, the parametrization
here covers the whole registry: a future algorithm registered with a
``run_iter`` but a broken (or missing) resume path fails this suite.
"""

import json
from dataclasses import replace

import pytest

from repro.api import (
    COMPLETE,
    TRUNCATED,
    Instance,
    NotResumable,
    ResumeMismatch,
    list_algorithms,
    registry_as_json,
    resume,
    resume_iter,
    solve,
    solve_iter,
)
from repro.errors import ResumeError
from repro.graphs import (
    assign_edge_weights,
    assign_node_weights,
    gnp_graph,
    random_bipartite_graph,
)
from repro.utils import drain

SEED = 7
EPS = 0.5

#: Algorithms the tentpole promotes from coarse begin/end to real
#: per-phase checkpointing (ROADMAP open item); the flavor test below
#: fails if any of them regresses to coarse.
NEWLY_PHASED = (
    "maxis-coloring",
    "matching-lines",
    "matching-proposal",
    "matching-proposal-bipartite",
)


@pytest.fixture(scope="module")
def general_graph():
    g = gnp_graph(16, 0.25, seed=3)
    assign_node_weights(g, 32, seed=4)
    assign_edge_weights(g, 32, seed=5)
    return g


@pytest.fixture(scope="module")
def bipartite_graph():
    g = random_bipartite_graph(6, 6, 0.4, seed=6)
    assign_edge_weights(g, 16, seed=7)
    return g


def instance_for(spec, general, bipartite, **overrides):
    graph = bipartite if spec.requires_bipartite else general
    return Instance(graph, seed=SEED, eps=EPS, **overrides)


@pytest.fixture(scope="module")
def unbounded(general_graph, bipartite_graph):
    """One unbounded run per algorithm, shared across the sweep."""

    return {
        spec.name: solve(
            instance_for(spec, general_graph, bipartite_graph), spec.name
        )
        for spec in list_algorithms()
    }


def assert_equals_unbounded(resumed, full, context):
    assert resumed.status == COMPLETE, context
    assert resumed.solution == full.solution, context
    assert resumed.objective == full.objective, context
    assert resumed.rounds == full.rounds, context
    assert resumed.ledger_counts() == full.ledger_counts(), context


def stop_points(full_rounds):
    """The satellite's sweep: k ∈ {0, 1, mid, last-phase}."""

    return sorted({
        k for k in (0, 1, full_rounds // 2, full_rounds - 1)
        if 0 <= k < full_rounds
    })


# ----------------------------------------------------------------------
# the registry-wide pinned contract
# ----------------------------------------------------------------------
class TestResumeContract:
    @pytest.mark.parametrize(
        "name", sorted(s.name for s in list_algorithms())
    )
    def test_truncate_then_resume_is_the_unbounded_run(
            self, name, general_graph, bipartite_graph, unbounded):
        spec = next(s for s in list_algorithms() if s.name == name)
        full = unbounded[name]
        if full.rounds == 0:
            pytest.skip(f"{name} terminates in 0 rounds; nothing to cut")
        base = instance_for(spec, general_graph, bipartite_graph)
        for k in stop_points(full.rounds):
            truncated = solve(replace(base, max_rounds=k), name)
            assert truncated.status == TRUNCATED, (name, k)
            assert truncated.rounds <= k, (name, k)
            assert truncated.resume_state is not None, (
                f"{name}: a truncated report must be resumable (k={k})"
            )
            resumed = resume(truncated, instance=base)
            assert_equals_unbounded(resumed, full, (name, k))

    @pytest.mark.parametrize(
        "name",
        sorted(s.name for s in list_algorithms() if s.run_iter is not None),
    )
    def test_phase_runners_continue_instead_of_restarting(
            self, name, general_graph, bipartite_graph, unbounded):
        # Not just equal output: a phase-structured resume must *keep*
        # the truncated run's partial solution (its objective can only
        # grow) — restarting from scratch would too, so additionally
        # pin that the resumed stream opens at the checkpoint's round
        # count, not at zero.
        spec = next(s for s in list_algorithms() if s.name == name)
        full = unbounded[name]
        if full.rounds < 2:
            pytest.skip(f"{name} has no interior stop point")
        base = instance_for(spec, general_graph, bipartite_graph)
        k = full.rounds // 2
        truncated = solve(replace(base, max_rounds=k), name)
        assert truncated.status == TRUNCATED
        stream = resume_iter(truncated, instance=base)
        first = next(stream)
        assert first.rounds == truncated.resume_state["rounds"], name
        assert first.rounds > 0 or truncated.rounds == 0, (
            f"{name}: resume restarted from round 0"
        )
        resumed = drain(stream)
        assert_equals_unbounded(resumed, full, (name, k))

    def test_simulator_traffic_accounting_continues(self, general_graph,
                                                    unbounded):
        # Algorithm 2 reports the simulator's cumulative NetworkMetrics:
        # a resumed run must carry the prefix's messages/bits forward,
        # not restart the meters.
        full = unbounded["maxis-layers"]
        base = Instance(general_graph, seed=SEED, eps=EPS)
        k = full.rounds // 2
        truncated = solve(replace(base, max_rounds=k), "maxis-layers")
        resumed = resume(truncated, instance=base)
        assert resumed.metrics is not None
        assert resumed.metrics.bits == full.metrics.bits
        assert resumed.metrics.messages == full.metrics.messages
        assert resumed.metrics.rounds == full.metrics.rounds

    def test_newly_phased_algorithms_are_no_longer_coarse(self):
        for name in NEWLY_PHASED:
            spec = next(s for s in list_algorithms() if s.name == name)
            assert spec.run_iter is not None, (
                f"{name} regressed to the coarse begin/end adapter"
            )
            assert spec.anytime == "phases"

    def test_registry_json_surfaces_resume_capability(self):
        entries = {row["name"]: row for row in registry_as_json()}
        for spec in list_algorithms():
            row = entries[spec.name]
            assert row["resume"] == row["anytime"]
            expected = "phases" if spec.run_iter is not None else "coarse"
            assert row["resume"] == expected, spec.name


# ----------------------------------------------------------------------
# serialization round trips (persisted warm starts)
# ----------------------------------------------------------------------
class TestSerializationRoundTrip:
    @pytest.mark.parametrize("name", ["maxis-layers", "matching-oneeps"])
    def test_report_payload_survives_json(self, name, general_graph,
                                          unbounded):
        full = unbounded[name]
        base = Instance(general_graph, seed=SEED, eps=EPS)
        k = full.rounds // 2
        truncated = solve(replace(base, max_rounds=k), name)
        payload = json.loads(json.dumps(truncated.resume_state,
                                        sort_keys=True))
        resumed = resume(payload, instance=base)
        assert_equals_unbounded(resumed, full, name)

    def test_checkpoint_payload_survives_json(self, general_graph,
                                              unbounded):
        # The payload from a mid-stream checkpoint (not just the final
        # report) is equally resumable after persistence.
        full = unbounded["matching-oneeps"]
        base = Instance(general_graph, seed=SEED, eps=EPS)
        stream = solve_iter(replace(base, max_rounds=full.rounds - 1),
                            "matching-oneeps")
        payloads = [cp.resume_state for cp in stream
                    if cp.resume_state is not None]
        assert payloads, "budgeted stream emitted no resumable state"
        payload = json.loads(json.dumps(payloads[-1]))
        resumed = resume(payload, instance=base)
        assert_equals_unbounded(resumed, full, "matching-oneeps")

    def test_unbudgeted_streams_stay_lean(self, general_graph):
        # No budget → nothing can cut the run → runners skip state
        # capture; only the fresh-start marker rides the first
        # checkpoint.
        checkpoints = list(solve_iter(
            Instance(general_graph, seed=SEED), "maxis-layers"
        ))
        assert checkpoints[0].resume_state is not None
        state = checkpoints[0].resume_state["state"]
        assert state == {"fresh": True}
        assert all(cp.resume_state is None for cp in checkpoints[1:])


# ----------------------------------------------------------------------
# multi-hop resume (cumulative budgets)
# ----------------------------------------------------------------------
class TestMultiHop:
    @pytest.mark.parametrize("name", ["maxis-layers", "matching-oneeps",
                                      "matching-oneeps-congest"])
    def test_two_truncations_then_completion(self, name, general_graph,
                                             unbounded):
        full = unbounded[name]
        if full.rounds < 3:
            pytest.skip(f"{name} finishes too fast for two hops")
        base = Instance(general_graph, seed=SEED, eps=EPS)
        k1 = full.rounds // 3
        k2 = (2 * full.rounds) // 3
        hop1 = solve(replace(base, max_rounds=k1), name)
        assert hop1.status == TRUNCATED
        # The second budget is cumulative: it extends the same run.
        hop2 = resume(hop1, instance=replace(base, max_rounds=k2))
        assert hop2.status == TRUNCATED
        assert hop1.rounds <= hop2.rounds <= k2
        assert hop2.resume_state is not None
        final = resume(hop2, instance=base)
        assert_equals_unbounded(final, full, name)

    def test_resolved_options_are_pinned_in_the_payload(self,
                                                        general_graph):
        # The never-stopped contract must hold even when the original
        # run used non-default algorithm options and the resume call
        # omits them: the payload pins what the run resolved.
        base = Instance(general_graph, seed=SEED, eps=EPS)
        full = solve(base, "matching-oneeps-congest", stages=2)
        truncated = solve(replace(base, max_rounds=full.rounds // 2),
                          "matching-oneeps-congest", stages=2)
        assert truncated.status == TRUNCATED
        resumed = resume(truncated, instance=base)  # stages= omitted
        assert_equals_unbounded(resumed, full, "pinned-options")

    def test_warm_start_keyword_is_the_same_path(self, general_graph,
                                                 unbounded):
        full = unbounded["maxis-layers"]
        base = Instance(general_graph, seed=SEED, eps=EPS)
        truncated = solve(replace(base, max_rounds=full.rounds // 2),
                          "maxis-layers")
        resumed = solve(base, "maxis-layers", warm_start=truncated)
        assert_equals_unbounded(resumed, full, "warm_start")


# ----------------------------------------------------------------------
# the backend axis: array-kernel runs honor the same contract
# ----------------------------------------------------------------------
#: Registry entries with a vectorized kernel (PR-6 tentpole): the whole
#: resume contract must hold with the array backend on either side of
#: the truncation, and produce the object backend's bits exactly.
ARRAY_PORTED = (
    "maxis-layers",
    "maxis-coloring",
    "matching-proposal",
    "matching-proposal-bipartite",
)

BACKEND_AXIS = [("array", "array"), ("object", "array"),
                ("array", "object")]


class TestBackendAxis:
    def test_ported_set_matches_the_registry(self):
        ported = sorted(s.name for s in list_algorithms() if s.array_kernel)
        assert ported == sorted(ARRAY_PORTED)

    @pytest.mark.parametrize("truncate_on,resume_on", BACKEND_AXIS)
    @pytest.mark.parametrize("name", ARRAY_PORTED)
    def test_truncate_and_resume_across_backends(
            self, name, truncate_on, resume_on,
            general_graph, bipartite_graph, unbounded):
        # The resume payload is backend-agnostic: a checkpoint captured
        # on either engine continues bit-for-bit on the other, and both
        # reproduce the object backend's unbounded run.
        spec = next(s for s in list_algorithms() if s.name == name)
        full = unbounded[name]
        if full.rounds < 2:
            pytest.skip(f"{name} has no interior stop point")
        base = instance_for(spec, general_graph, bipartite_graph)
        k = full.rounds // 2
        truncated = solve(
            replace(base, max_rounds=k, backend=truncate_on), name
        )
        assert truncated.status == TRUNCATED, (name, truncate_on)
        resumed = resume(truncated,
                         instance=replace(base, backend=resume_on))
        assert_equals_unbounded(resumed, full, (name, truncate_on,
                                                resume_on))

    @pytest.mark.parametrize("name", ARRAY_PORTED)
    def test_max_rounds_zero_on_array_backend(
            self, name, general_graph, bipartite_graph, unbounded):
        spec = next(s for s in list_algorithms() if s.name == name)
        full = unbounded[name]
        base = instance_for(spec, general_graph, bipartite_graph,
                            backend="array")
        truncated = solve(replace(base, max_rounds=0), name)
        assert truncated.status == TRUNCATED
        assert truncated.rounds == 0
        resumed = resume(truncated, instance=base)
        assert_equals_unbounded(resumed, full, (name, "k=0"))

    @pytest.mark.parametrize("name", ["maxis-layers", "maxis-coloring"])
    def test_degenerate_graphs_agree_across_backends(self, name):
        import networkx as nx

        empty = nx.Graph()
        isolated = nx.Graph()
        isolated.add_nodes_from(range(5))
        single = nx.Graph([(0, 1)])
        single.nodes[0]["weight"] = 9
        single.nodes[1]["weight"] = 2
        for graph in (empty, isolated, single):
            obj = solve(Instance(graph, seed=SEED), name)
            arr = solve(Instance(graph, seed=SEED, backend="array"), name)
            assert arr.solution == obj.solution
            assert arr.objective == obj.objective
            assert arr.rounds == obj.rounds

    def test_metrics_continue_across_a_backend_switch(self, general_graph,
                                                      unbounded):
        # Cumulative traffic accounting survives truncating on the
        # array engine and finishing on the object engine.
        full = unbounded["maxis-layers"]
        base = Instance(general_graph, seed=SEED, eps=EPS)
        k = full.rounds // 2
        truncated = solve(
            replace(base, max_rounds=k, backend="array"), "maxis-layers"
        )
        resumed = resume(truncated, instance=base)
        assert resumed.metrics.bits == full.metrics.bits
        assert resumed.metrics.messages == full.metrics.messages
        assert resumed.metrics.rounds == full.metrics.rounds

    def test_backend_does_not_change_the_fingerprint(self, general_graph,
                                                     unbounded):
        # Deliberate: results are bit-identical across backends, so a
        # payload captured under backend="array" resumes under the
        # default instance without a ResumeMismatch.
        full = unbounded["maxis-layers"]
        base = Instance(general_graph, seed=SEED, eps=EPS)
        truncated = solve(
            replace(base, max_rounds=full.rounds // 2, backend="array"),
            "maxis-layers",
        )
        resumed = resume(truncated, instance=base)  # backend omitted
        assert_equals_unbounded(resumed, full, "fingerprint")


# ----------------------------------------------------------------------
# error paths (typed)
# ----------------------------------------------------------------------
class TestErrorPaths:
    def test_resuming_a_complete_report_raises(self, general_graph,
                                               unbounded):
        full = unbounded["maxis-layers"]
        assert full.status == COMPLETE
        with pytest.raises(NotResumable):
            resume(full)

    def test_mismatched_instance_fingerprint_raises(self, general_graph,
                                                    unbounded):
        full = unbounded["maxis-layers"]
        base = Instance(general_graph, seed=SEED, eps=EPS)
        truncated = solve(replace(base, max_rounds=full.rounds // 2),
                          "maxis-layers")
        with pytest.raises(ResumeMismatch):
            resume(truncated, instance=replace(base, seed=SEED + 1))

    def test_budget_may_differ_without_mismatch(self, general_graph,
                                                unbounded):
        # max_rounds is excluded from the fingerprint by design: the
        # whole point of a warm start is a different budget.
        full = unbounded["maxis-layers"]
        base = Instance(general_graph, seed=SEED, eps=EPS)
        truncated = solve(replace(base, max_rounds=full.rounds // 2),
                          "maxis-layers")
        resumed = resume(
            truncated, instance=replace(base, max_rounds=10 ** 9)
        )
        assert_equals_unbounded(resumed, full, "budget-change")

    def test_budget_below_checkpoint_raises(self, general_graph,
                                            unbounded):
        full = unbounded["maxis-layers"]
        base = Instance(general_graph, seed=SEED, eps=EPS)
        k = full.rounds // 2
        truncated = solve(replace(base, max_rounds=k), "maxis-layers")
        consumed = truncated.resume_state["rounds"]
        if consumed == 0:
            pytest.skip("checkpoint consumed no rounds")
        with pytest.raises(NotResumable):
            resume(truncated,
                   instance=replace(base, max_rounds=consumed - 1))

    def test_wrong_algorithm_raises(self, general_graph, unbounded):
        full = unbounded["maxis-layers"]
        base = Instance(general_graph, seed=SEED, eps=EPS)
        truncated = solve(replace(base, max_rounds=full.rounds // 2),
                          "maxis-layers")
        with pytest.raises(ResumeMismatch):
            resume(truncated, instance=base, algorithm="maxis-coloring")

    def test_malformed_payload_raises(self, general_graph):
        with pytest.raises(NotResumable):
            resume({"algorithm": "maxis-layers"},
                   instance=Instance(general_graph))
        with pytest.raises(NotResumable):
            resume(object(), instance=Instance(general_graph))

    def test_payload_without_instance_raises(self, general_graph,
                                             unbounded):
        full = unbounded["maxis-layers"]
        base = Instance(general_graph, seed=SEED, eps=EPS)
        truncated = solve(replace(base, max_rounds=full.rounds // 2),
                          "maxis-layers")
        with pytest.raises(NotResumable):
            resume(dict(truncated.resume_state))

    def test_typed_errors_share_a_base(self):
        assert issubclass(NotResumable, ResumeError)
        assert issubclass(ResumeMismatch, ResumeError)
