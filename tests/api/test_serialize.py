"""Adversarial round trips through the resume-payload codec.

``to_jsonable``/``from_jsonable`` guard every resume file the CLI and
the solver service write, so the codec must survive hostile shapes:
tag-colliding dict keys, deep nesting, non-finite floats, unknown
tags in foreign input, and mixed containers — and must refuse (not
mangle) types it cannot restore.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.api.serialize import from_jsonable, to_jsonable


def roundtrip(obj):
    """The full journey a payload takes: encode → JSON → decode."""

    return from_jsonable(json.loads(json.dumps(to_jsonable(obj))))


class TestRoundTrips:
    @pytest.mark.parametrize("obj", [
        None,
        True,
        0,
        -17,
        2**63,
        1.5,
        "",
        "text",
        [],
        {},
        (),
        set(),
        frozenset(),
        (1, 2, 3),
        {1, 2, 3},
        frozenset({3, 1, 2}),
        [1, [2, [3, [4]]]],
        {"a": 1, "b": [2, 3]},
        ("mixed", [1, {2}], frozenset({(3, 4)})),
        {frozenset({1, 2}): "edge", (0, 1): "tuple-key"},
        {None: "none-key", True: "bool-key", 7: "int-key"},
        {"outer": {"inner": ({"deep": {frozenset({5})}},)}},
    ])
    def test_value_survives(self, obj):
        assert roundtrip(obj) == obj

    def test_types_survive_exactly(self):
        restored = roundtrip((frozenset({1}), {2}, [3], (4,)))
        assert isinstance(restored, tuple)
        assert isinstance(restored[0], frozenset)
        assert isinstance(restored[1], set)
        assert isinstance(restored[2], list)
        assert isinstance(restored[3], tuple)

    def test_bool_int_distinction_survives(self):
        restored = roundtrip([True, 1, False, 0])
        assert [type(x) for x in restored] == [bool, int, bool, int]

    def test_deep_nesting(self):
        obj = "leaf"
        for _ in range(100):
            obj = {"next": (obj,)}
        assert roundtrip(obj) == obj

    def test_wide_payload(self):
        obj = {f"node-{i}": frozenset({(i, i + 1)}) for i in range(500)}
        assert roundtrip(obj) == obj

    def test_realistic_resume_shape(self):
        payload = {
            "version": 1,
            "algorithm": "matching-proposal",
            "phase": "repetition-2",
            "rounds": 12,
            "state": {
                "matched": frozenset({frozenset({0, 3})}),
                "proposals": {(0, 3): ("accept", 1.5)},
                "rng": (123, (1, 2, 3), None),
            },
        }
        assert roundtrip(payload) == payload


class TestTagCollisions:
    @pytest.mark.parametrize("tag", [
        "__tuple__", "__set__", "__frozenset__", "__dict__",
    ])
    def test_dict_key_colliding_with_tag(self, tag):
        obj = {tag: "user data", "other": 1}
        assert roundtrip(obj) == obj

    def test_single_key_collision(self):
        # the hardest case: exactly one key, and it IS a tag name
        obj = {"__set__": [1, 2]}
        assert roundtrip(obj) == obj

    def test_collision_inside_nested_value(self):
        obj = {"state": {"__tuple__": "not a real tuple tag"}}
        assert roundtrip(obj) == obj

    def test_tuple_containing_collision_dict(self):
        obj = ({"__frozenset__": 0},)
        restored = roundtrip(obj)
        assert restored == obj
        assert isinstance(restored, tuple)
        assert isinstance(restored[0], dict)


class TestNonFiniteFloats:
    def test_infinities_round_trip(self):
        assert roundtrip([math.inf, -math.inf]) == [math.inf, -math.inf]

    def test_nan_round_trips_as_nan(self):
        restored = roundtrip({"weight": math.nan})
        assert math.isnan(restored["weight"])

    def test_negative_zero_sign_survives(self):
        restored = roundtrip(-0.0)
        assert restored == 0.0
        assert math.copysign(1.0, restored) == -1.0


class TestForeignInput:
    def test_unknown_tag_passes_through_as_plain_dict(self):
        foreign = {"__exotic__": [1, 2]}
        assert from_jsonable(foreign) == foreign

    def test_decode_is_idempotent_on_json_native(self):
        native = {"a": [1, 2.5, None, True, "s"], "b": {"c": []}}
        assert from_jsonable(native) == native
        assert from_jsonable(from_jsonable(native)) == native

    def test_multi_key_dict_with_tag_is_not_decoded(self):
        # only single-key dicts are tag candidates
        foreign = {"__set__": [1], "extra": 2}
        assert from_jsonable(foreign) == foreign

    def test_malformed_tag_value_raises_not_corrupts(self):
        with pytest.raises((TypeError, ValueError)):
            from_jsonable({"__dict__": "not-a-pair-list"})


class TestRejections:
    @pytest.mark.parametrize("obj", [
        object(),
        bytes(b"raw"),
        bytearray(b"raw"),
        complex(1, 2),
        range(3),
        {"nested": {"deep": object()}},
        [1, 2, object()],
    ])
    def test_unsupported_types_raise_type_error(self, obj):
        with pytest.raises(TypeError):
            to_jsonable(obj)

    def test_error_names_the_offending_type(self):
        with pytest.raises(TypeError, match="bytes"):
            to_jsonable(b"raw")


class TestDeterminism:
    def test_set_encoding_is_order_independent(self):
        a = to_jsonable({3, 1, 2})
        b = to_jsonable({2, 3, 1})
        assert json.dumps(a) == json.dumps(b)

    def test_frozenset_of_tuples_is_deterministic(self):
        edges = [frozenset({(i, j) for i in range(4) for j in range(4)})
                 for _ in range(2)]
        assert json.dumps(to_jsonable(edges[0])) == \
            json.dumps(to_jsonable(edges[1]))
