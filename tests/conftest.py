"""Shared fixtures: small deterministic workloads used across the suite."""

from __future__ import annotations

import pytest

from repro.graphs import (
    assign_edge_weights,
    assign_node_weights,
    cycle_graph,
    gnp_graph,
    grid_graph,
    path_graph,
    random_bipartite_graph,
    random_tree,
    star_graph,
)

SEEDS = (0, 1, 2)


@pytest.fixture
def small_graph():
    """A 24-node sparse random graph (unweighted)."""

    return gnp_graph(24, 0.15, seed=7)


@pytest.fixture
def weighted_graph():
    """A 20-node graph with node weights in [1, 32]."""

    g = gnp_graph(20, 0.2, seed=3)
    return assign_node_weights(g, 32, seed=4)


@pytest.fixture
def edge_weighted_graph():
    """An 18-node graph with edge weights in [1, 16]."""

    g = gnp_graph(18, 0.22, seed=5)
    return assign_edge_weights(g, 16, seed=6)


@pytest.fixture
def bipartite_graph():
    """A 15+15 random bipartite graph with ``side`` attributes."""

    return random_bipartite_graph(15, 15, 0.2, seed=8)


@pytest.fixture(params=["path", "cycle", "star", "grid", "tree", "gnp"])
def topology(request):
    """A sweep over small structured topologies."""

    name = request.param
    if name == "path":
        return path_graph(12)
    if name == "cycle":
        return cycle_graph(11)
    if name == "star":
        return star_graph(9)
    if name == "grid":
        return grid_graph(4, 4)
    if name == "tree":
        return random_tree(14, seed=2)
    return gnp_graph(16, 0.2, seed=9)
