"""The array-native simulator backend: **bit-compatible or fall back**.

The contract this suite pins (the PR-6 tentpole):

* for every ported program (Algorithm 2 layers, Algorithm 3 coloring,
  the Lemma B.13 proposal matcher) the array backend reproduces the
  object backend bit-for-bit — same outputs, same round count, and the
  *exact* same :class:`~repro.congest.NetworkMetrics` (messages, bits,
  max bits/edge/round, violations, round breakdown);
* edge cases hold: no edges, isolated vertices, a single edge,
  ``max_rounds=0``, and mid-run truncation + resume (including resuming
  an object-backend checkpoint on the array backend and vice versa —
  the ``resume_state`` payload format is backend-agnostic);
* everything the kernels do not cover falls back to the object engine
  transparently (unported programs, ``participants=``, strict mode,
  oversized weights, …) instead of diverging or crashing;
* backend selection plumbing works: ``make_network``, the
  ``REPRO_BACKEND`` environment variable, ``Instance(backend=...)``
  validation, and the registry's ``backends`` capability column.
"""

import networkx as nx
import pytest

from repro.congest import (
    ARRAY_BACKEND,
    BACKEND_ENV,
    OBJECT_BACKEND,
    ArrayNetwork,
    IdleProgram,
    SynchronousNetwork,
    make_network,
    resolve_backend,
)
from repro.congest import array_kernels
from repro.core import maxis_coloring, maxis_layers, proposal_matching
from repro.core.maxis_coloring import MaxISColoringProgram
from repro.core.maxis_layers import LayerTrace, MaxISLayersProgram
from repro.core.proposal_matching import ProposalProgram
from repro.errors import InvalidInstance, SimulationError
from repro.graphs import assign_node_weights, gnp_graph
from repro.mis.coloring import delta_plus_one_coloring
from repro.utils import drain


def layers_factory(graph, trace=None):
    def factory(node):
        return MaxISLayersProgram(graph.nodes[node].get("weight", 1), trace)

    return factory


def coloring_factory(graph):
    colors = delta_plus_one_coloring(graph).colors

    def factory(node):
        return MaxISColoringProgram(
            weight=graph.nodes[node].get("weight", 1),
            color=colors[node],
            neighbor_colors={u: colors[u] for u in graph.neighbors(node)},
        )

    return factory


def proposal_factory(graph, phases=6):
    sides = {v: ("L" if v % 2 == 0 else "R") for v in graph.nodes}

    def factory(node):
        return ProposalProgram(sides[node], phases)

    return factory


def bipartite_graph(nl, nr, p, seed):
    """Bipartite test graph with even/odd node ids encoding the sides."""

    raw = nx.bipartite.random_graph(nl, nr, p, seed=seed)
    relabel = {}
    left = sorted(v for v, d in raw.nodes(data=True) if d["bipartite"] == 0)
    right = sorted(v for v in raw.nodes if v not in set(left))
    for i, v in enumerate(left):
        relabel[v] = 2 * i
    for i, v in enumerate(right):
        relabel[v] = 2 * i + 1
    return nx.relabel_nodes(raw, relabel)


def weighted_gnp(n, p, seed, max_weight=256):
    g = gnp_graph(n, p, seed=seed)
    assign_node_weights(g, max_weight, scheme="log-uniform", seed=seed + 1)
    return g


def metrics_tuple(network):
    m = network.metrics
    return (m.rounds, m.messages, m.bits, m.max_bits_per_edge_round,
            m.violations, dict(m.round_breakdown))


def run_both(graph, factory_of, seed=0, max_rounds=10_000, **run_kwargs):
    """Run one program on both backends; return the two (result, metrics)."""

    out = []
    for backend in (OBJECT_BACKEND, ARRAY_BACKEND):
        network = make_network(graph, seed=seed, backend=backend)
        result = drain(network.run_stepwise(
            factory_of(graph), max_rounds=max_rounds, **run_kwargs
        ))
        out.append((result, metrics_tuple(network)))
    return out


def assert_bit_identical(graph, factory_of, seed=0, **run_kwargs):
    (obj, obj_m), (arr, arr_m) = run_both(
        graph, factory_of, seed=seed, **run_kwargs
    )
    assert arr.outputs == obj.outputs
    assert arr.rounds == obj.rounds
    assert arr.completed == obj.completed
    assert arr_m == obj_m
    return obj, arr


# ----------------------------------------------------------------------
# bit-compatibility on real workloads
# ----------------------------------------------------------------------
class TestKernelParity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_maxis_layers(self, seed):
        graph = weighted_gnp(90, 0.06, seed=seed)
        assert_bit_identical(graph, layers_factory, seed=seed,
                             label="maxis-layers")

    @pytest.mark.parametrize("seed", [0, 1])
    def test_maxis_coloring(self, seed):
        graph = weighted_gnp(80, 0.07, seed=seed)
        assert_bit_identical(graph, coloring_factory, label="maxis-coloring")

    @pytest.mark.parametrize("seed", [0, 5])
    def test_proposal(self, seed):
        graph = bipartite_graph(25, 30, 0.15, seed=seed)
        assert_bit_identical(graph, proposal_factory, seed=seed,
                             label="proposal-matching")

    def test_layer_trace_is_shared_and_identical(self):
        graph = weighted_gnp(60, 0.08, seed=3)
        traces = {}
        for backend in (OBJECT_BACKEND, ARRAY_BACKEND):
            trace = LayerTrace()
            network = make_network(graph, seed=0, backend=backend)
            drain(network.run_stepwise(
                layers_factory(graph, trace), max_rounds=10_000
            ))
            traces[backend] = trace
        assert (traces[ARRAY_BACKEND].occupancy
                == traces[OBJECT_BACKEND].occupancy)

    def test_core_entry_points_accept_backend(self):
        graph = weighted_gnp(70, 0.07, seed=4)
        obj = maxis_layers.maxis_local_ratio_layers(graph, seed=2)
        net = make_network(graph, seed=2, backend=ARRAY_BACKEND)
        arr = maxis_layers.maxis_local_ratio_layers(graph, seed=2,
                                                    network=net)
        assert arr.independent_set == obj.independent_set
        assert arr.rounds == obj.rounds
        assert arr.weight == obj.weight

    def test_general_proposal_backend_kwarg(self):
        graph = gnp_graph(50, 0.09, seed=11)
        obj = proposal_matching.general_proposal_matching(graph, seed=3)
        arr = proposal_matching.general_proposal_matching(
            graph, seed=3, backend=ARRAY_BACKEND
        )
        assert arr[0] == obj[0]
        assert arr[1] == obj[1]
        assert arr[2].breakdown == obj[2].breakdown


# ----------------------------------------------------------------------
# edge cases (the satellite checklist)
# ----------------------------------------------------------------------
class TestEdgeCases:
    def test_empty_graph_falls_back_cleanly(self):
        graph = nx.Graph()
        network = make_network(graph, backend=ARRAY_BACKEND)
        result = drain(network.run_stepwise(layers_factory(graph)))
        assert result.outputs == {}
        assert result.completed

    def test_edgeless_graph(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(7))
        for factory_of in (layers_factory, coloring_factory,
                           proposal_factory):
            assert_bit_identical(graph, factory_of)

    def test_isolated_vertices_mixed_with_a_component(self):
        graph = weighted_gnp(40, 0.1, seed=6)
        graph.add_nodes_from(range(1000, 1010))  # isolated, weight 1
        assert_bit_identical(graph, layers_factory, seed=6)
        assert_bit_identical(graph, coloring_factory)

    def test_single_edge(self):
        graph = nx.Graph([(0, 1)])
        graph.nodes[0]["weight"] = 5
        graph.nodes[1]["weight"] = 3
        obj, _arr = assert_bit_identical(graph, layers_factory)
        assert sorted(obj.outputs.values()) == ["InIS", "NotInIS"]
        assert_bit_identical(graph, coloring_factory)
        assert_bit_identical(graph, proposal_factory)

    def test_max_rounds_zero_truncates_before_any_round(self):
        graph = weighted_gnp(30, 0.1, seed=7)
        for backend in (OBJECT_BACKEND, ARRAY_BACKEND):
            network = make_network(graph, backend=backend)
            result = drain(network.run_stepwise(
                layers_factory(graph), max_rounds=0, stop_on_limit=True,
                capture_state=True, checkpoint_every=1,
            ))
            assert not result.completed
            assert result.rounds == 0
            assert network.metrics.messages == 0

    def test_self_loop_graph_matches_object_backend(self):
        graph = nx.Graph([(0, 1), (1, 1)])
        assert_bit_identical(graph, layers_factory)


# ----------------------------------------------------------------------
# truncation + resume across backends
# ----------------------------------------------------------------------
def drain_with_state(stepper):
    """Drain a stepwise run; return ``(result, final snapshot state)``."""

    state = None
    while True:
        try:
            snapshot = next(stepper)
        except StopIteration as stop:
            return stop.value, state
        if snapshot.state is not None:
            state = snapshot.state


def truncate_then_resume(graph, factory_of, cut, first, second,
                         label="maxis-layers", seed=0):
    """Truncate at ``cut`` rounds on ``first``, resume on ``second``."""

    reference = make_network(graph, seed=seed, backend=OBJECT_BACKEND)
    full = drain(reference.run_stepwise(
        factory_of(graph), max_rounds=10_000, label=label
    ))
    if cut >= full.rounds:
        pytest.skip(f"run finishes in {full.rounds} rounds; cut={cut} "
                    f"is not interior")
    head_net = make_network(graph, seed=seed, backend=first)
    head, state = drain_with_state(head_net.run_stepwise(
        factory_of(graph), max_rounds=cut, label=label,
        stop_on_limit=True, capture_state=True, checkpoint_every=1,
    ))
    assert not head.completed
    assert state is not None
    tail_net = make_network(graph, seed=seed, backend=second)
    tail = drain(tail_net.run_stepwise(
        factory_of(graph), max_rounds=10_000, label=label,
        resume_state=state,
    ))
    assert tail.outputs == full.outputs
    assert tail.rounds == full.rounds
    assert metrics_tuple(tail_net) == metrics_tuple(reference)


class TestTruncateAndResume:
    BACKEND_PAIRS = [
        (ARRAY_BACKEND, ARRAY_BACKEND),
        (OBJECT_BACKEND, ARRAY_BACKEND),
        (ARRAY_BACKEND, OBJECT_BACKEND),
    ]

    @pytest.mark.parametrize("first,second", BACKEND_PAIRS)
    @pytest.mark.parametrize("cut", [1, 3, 7])
    def test_layers(self, first, second, cut):
        graph = weighted_gnp(70, 0.07, seed=8)
        truncate_then_resume(graph, layers_factory, cut, first, second)

    @pytest.mark.parametrize("first,second", BACKEND_PAIRS)
    @pytest.mark.parametrize("cut", [1, 2, 3])
    def test_coloring(self, first, second, cut):
        graph = weighted_gnp(60, 0.08, seed=9)
        truncate_then_resume(graph, coloring_factory, cut, first, second,
                             label="maxis-coloring")

    @pytest.mark.parametrize("first,second", BACKEND_PAIRS)
    @pytest.mark.parametrize("cut", [2, 5])
    def test_proposal(self, first, second, cut):
        graph = bipartite_graph(20, 24, 0.18, seed=10)
        truncate_then_resume(graph, proposal_factory, cut, first, second,
                             label="proposal-matching", seed=3)

    def test_resume_missing_node_raises_like_object_backend(self):
        # A payload that lacks a live node's state is a hard error on
        # both backends, not a silent fallback.
        graph = weighted_gnp(30, 0.1, seed=12)
        net = make_network(graph, backend=ARRAY_BACKEND)
        _head, state = drain_with_state(net.run_stepwise(
            layers_factory(graph), max_rounds=2, stop_on_limit=True,
            capture_state=True, checkpoint_every=1,
        ))
        missing = next(iter(state["live"]))
        del state["live"][missing]
        for backend in (OBJECT_BACKEND, ARRAY_BACKEND):
            fresh = make_network(graph, backend=backend)
            with pytest.raises(SimulationError,
                               match="knows nothing about"):
                drain(fresh.run_stepwise(layers_factory(graph),
                                         resume_state=state))


# ----------------------------------------------------------------------
# transparent fallback
# ----------------------------------------------------------------------
class TestFallback:
    def test_unported_program_runs_on_object_engine(self):
        graph = gnp_graph(12, 0.3, seed=13)
        network = make_network(graph, backend=ARRAY_BACKEND)
        result = drain(network.run_stepwise(lambda node: IdleProgram(),
                                            quiescence_halts=True))
        assert result.completed

    def test_participants_subset_falls_back(self):
        graph = weighted_gnp(20, 0.2, seed=14)
        sub = sorted(graph.nodes)[:10]
        arr = make_network(graph, backend=ARRAY_BACKEND)
        obj = make_network(graph, backend=OBJECT_BACKEND)
        a = drain(arr.run_stepwise(layers_factory(graph), participants=sub))
        b = drain(obj.run_stepwise(layers_factory(graph), participants=sub))
        assert a.outputs == b.outputs
        assert metrics_tuple(arr) == metrics_tuple(obj)

    def test_huge_weights_fall_back_bit_identically(self):
        graph = gnp_graph(16, 0.3, seed=15)
        for node in graph.nodes:
            graph.nodes[node]["weight"] = (1 << 80) + node
        assert_bit_identical(graph, layers_factory)

    def test_strict_mode_falls_back(self):
        graph = weighted_gnp(20, 0.2, seed=16)
        network = make_network(graph, backend=ARRAY_BACKEND, strict=True)
        result = drain(network.run_stepwise(layers_factory(graph)))
        assert result.completed

    def test_fallback_preserves_protocol_round_labels(self):
        # A fallback must not double-charge the per-protocol round
        # breakdown: one run, one label entry.
        graph = gnp_graph(10, 0.4, seed=17)
        for node in graph.nodes:
            graph.nodes[node]["weight"] = 1 << 90  # forces fallback
        network = make_network(graph, backend=ARRAY_BACKEND)
        drain(network.run_stepwise(layers_factory(graph), label="one"))
        assert set(network.metrics.round_breakdown) == {"one"}


# ----------------------------------------------------------------------
# selection plumbing and pinned constants
# ----------------------------------------------------------------------
class TestSelection:
    def test_make_network_types(self, monkeypatch):
        # Pin the built-in default: clear any REPRO_BACKEND override
        # (CI deliberately runs the whole suite under =array).
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        graph = nx.path_graph(4)
        assert isinstance(make_network(graph), SynchronousNetwork)
        assert not isinstance(make_network(graph), ArrayNetwork)
        assert isinstance(make_network(graph, backend=ARRAY_BACKEND),
                          ArrayNetwork)

    def test_env_variable_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, ARRAY_BACKEND)
        assert resolve_backend(None) == ARRAY_BACKEND
        assert isinstance(make_network(nx.path_graph(3)), ArrayNetwork)
        monkeypatch.setenv(BACKEND_ENV, OBJECT_BACKEND)
        assert resolve_backend(None) == OBJECT_BACKEND

    def test_unknown_backend_rejected(self):
        with pytest.raises(InvalidInstance):
            resolve_backend("gpu")

    def test_instance_backend_validation(self):
        from repro.api import Instance

        with pytest.raises(InvalidInstance):
            Instance(nx.path_graph(3), backend="gpu")
        inst = Instance(nx.path_graph(3), backend=ARRAY_BACKEND)
        assert isinstance(inst.network(), ArrayNetwork)

    def test_registry_surfaces_backend_capability(self):
        from repro.api import list_algorithms

        by_name = {s.name: s for s in list_algorithms()}
        for name in ("maxis-layers", "maxis-coloring", "matching-proposal",
                     "matching-proposal-bipartite"):
            assert by_name[name].backends == ("object", "array"), name
            assert by_name[name].describe()["backends"] == [
                "object", "array"
            ]
        assert by_name["mis-luby"].backends == ("object",)

    def test_kernel_constants_match_the_programs(self):
        # The kernels re-state the program output literals locally (to
        # stay import-light); this pins them to the real definitions.
        assert array_kernels.IN_IS == maxis_layers.IN_IS
        assert array_kernels.NOT_IN_IS == maxis_layers.NOT_IN_IS
        assert array_kernels.IN_IS == maxis_coloring.IN_IS
        assert array_kernels.ACTIVE == MaxISLayersProgram.ACTIVE
        assert array_kernels.CANDIDATE == MaxISLayersProgram.CANDIDATE
        assert array_kernels.ACTIVE == MaxISColoringProgram.ACTIVE
        assert array_kernels.CANDIDATE == MaxISColoringProgram.CANDIDATE
        assert array_kernels.MATCHED == proposal_matching.MATCHED
        assert array_kernels.UNLUCKY == proposal_matching.UNLUCKY
        assert array_kernels.ISOLATED == proposal_matching.ISOLATED

    def test_csr_cache_shared_and_invalidated(self):
        # Networks over the same graph object share one compiled CSR;
        # an in-place topology edit (changed degree sequence) triggers
        # a recompile instead of serving the stale structure.
        graph = gnp_graph(14, 0.3, seed=8)
        first = make_network(graph, seed=1, backend=ARRAY_BACKEND)
        second = make_network(graph, seed=2, backend=ARRAY_BACKEND)
        assert first._ensure_csr() is second._ensure_csr()

        baseline = drain(first.run_stepwise(layers_factory(graph)))
        graph.add_edge(0, len(graph) + 5)  # new node + edge
        third = make_network(graph, seed=1, backend=ARRAY_BACKEND)
        csr = third._ensure_csr()
        assert csr is not first._ensure_csr()
        assert csr.n == graph.number_of_nodes()
        # and the recompiled network still matches the object backend
        mirror = make_network(graph, seed=1, backend=OBJECT_BACKEND)
        array_result = drain(third.run_stepwise(layers_factory(graph)))
        object_result = drain(mirror.run_stepwise(layers_factory(graph)))
        assert array_result.outputs == object_result.outputs
        assert baseline.outputs  # the pre-mutation run stays intact

    def test_kernel_rng_matches_stable_rng(self):
        # ArrayKernel.rng seeds through the C base class (skipping the
        # random.Random.seed python wrapper) for speed; the stream must
        # stay bit-identical to utils.stable_rng(seed, node, proto).
        from repro.utils import stable_rng

        graph = gnp_graph(12, 0.3, seed=5)
        network = make_network(graph, seed=9, backend=ARRAY_BACKEND)
        csr = network._ensure_csr()
        kernel = array_kernels.MaxISLayersKernel(
            network, csr,
            [MaxISLayersProgram(graph.nodes[v].get("weight", 1))
             for v in csr.nodes],
        )
        kernel.bind(proto=2)
        for i, node in enumerate(csr.nodes):
            reference = stable_rng(9, node, 2)
            fast = kernel.rng(i)
            assert fast.getstate() == reference.getstate()
            assert [fast.random() for _ in range(3)] == [
                reference.random() for _ in range(3)
            ]
