"""Tests for the round ledger used by phase-composed algorithms."""

import pytest

from repro.congest import RoundLedger


class TestRoundLedger:
    def test_charge_accumulates(self):
        ledger = RoundLedger()
        ledger.charge(3, "mis")
        ledger.charge(2, "mis")
        ledger.charge(1, "cleanup")
        assert ledger.total == 6
        assert ledger.breakdown == {"mis": 5, "cleanup": 1}

    def test_negative_charge_rejected(self):
        ledger = RoundLedger()
        with pytest.raises(ValueError):
            ledger.charge(-1, "oops")

    def test_charge_broadcast_pipelines_wide_payloads(self):
        ledger = RoundLedger()
        ledger.charge_broadcast(payload_bits=100, bandwidth=32, label="wide")
        assert ledger.breakdown["wide"] == 4  # ceil(100/32)

    def test_charge_broadcast_minimum_one_round(self):
        ledger = RoundLedger()
        ledger.charge_broadcast(payload_bits=1, bandwidth=64, label="tiny")
        assert ledger.breakdown["tiny"] == 1

    def test_merge(self):
        a = RoundLedger()
        a.charge(2, "x")
        b = RoundLedger()
        b.charge(3, "x")
        b.charge(1, "y")
        a.merge(b)
        assert a.total == 6
        assert a.breakdown == {"x": 5, "y": 1}

    def test_as_dict_includes_total(self):
        ledger = RoundLedger()
        ledger.charge(4, "phase")
        assert ledger.as_dict() == {"phase": 4, "total": 4}
