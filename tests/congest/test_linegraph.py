"""Tests for line-graph construction and the congestion audit."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.congest import (
    CongestionAudit,
    canonical_edge,
    line_graph,
    primary_endpoint,
    run_on_line_graph,
    secondary_endpoint,
    shared_endpoint,
)
from repro.congest.node import NodeProgram
from repro.graphs import gnp_graph, path_graph, star_graph


class TestCanonicalEdge:
    def test_symmetric(self):
        assert canonical_edge(1, 2) == canonical_edge(2, 1)

    def test_endpoints_preserved(self):
        assert set(canonical_edge(5, 3)) == {3, 5}

    def test_primary_secondary_are_endpoints(self):
        e = canonical_edge(4, 9)
        assert {primary_endpoint(e), secondary_endpoint(e)} == {4, 9}


class TestLineGraph:
    def test_node_count_equals_edge_count(self, small_graph):
        lg = line_graph(small_graph)
        assert lg.number_of_nodes() == small_graph.number_of_edges()

    def test_degree_identity(self):
        """deg_L(e) = deg(u) + deg(v) - 2 for e = (u, v)."""

        g = gnp_graph(15, 0.3, seed=2)
        lg = line_graph(g)
        for e in lg.nodes:
            u, v = e
            assert lg.degree(e) == g.degree(u) + g.degree(v) - 2

    def test_star_line_graph_is_complete(self):
        g = star_graph(6)
        lg = line_graph(g)
        n = lg.number_of_nodes()
        assert lg.number_of_edges() == n * (n - 1) // 2

    def test_path_line_graph_is_path(self):
        lg = line_graph(path_graph(6))
        degrees = sorted(d for _, d in lg.degree())
        assert degrees == [1, 1, 2, 2, 2]

    def test_edge_weights_become_node_weights(self):
        g = nx.Graph()
        g.add_edge(0, 1, weight=7)
        lg = line_graph(g)
        assert lg.nodes[canonical_edge(0, 1)]["weight"] == 7

    @given(st.integers(min_value=0, max_value=60))
    @settings(max_examples=20, deadline=None)
    def test_matches_networkx_line_graph(self, seed):
        g = gnp_graph(10, 0.3, seed=seed)
        ours = line_graph(g)
        theirs = nx.line_graph(g)
        assert ours.number_of_nodes() == theirs.number_of_nodes()
        assert ours.number_of_edges() == theirs.number_of_edges()


class TestSharedEndpoint:
    def test_shared(self):
        assert shared_endpoint((1, 2), (2, 3)) == 2

    def test_disjoint_raises(self):
        with pytest.raises(ValueError):
            shared_endpoint((1, 2), (3, 4))


class _Broadcast(NodeProgram):
    def on_round(self, ctx):
        if ctx.round == 0:
            ctx.broadcast("hi")
        else:
            ctx.halt(True)


class TestCongestionAudit:
    def test_naive_load_grows_with_star_degree(self):
        small = CongestionAudit()
        run_on_line_graph(star_graph(4), lambda e: _Broadcast(),
                          audit=small, max_rounds=4)
        big = CongestionAudit()
        run_on_line_graph(star_graph(12), lambda e: _Broadcast(),
                          audit=big, max_rounds=4)
        assert big.max_naive_load() > small.max_naive_load()

    def test_aggregated_load_is_constant(self):
        for leaves in (4, 8, 12):
            audit = CongestionAudit()
            run_on_line_graph(star_graph(leaves), lambda e: _Broadcast(),
                              audit=audit, max_rounds=4)
            assert audit.max_aggregated_load() == 2

    def test_outputs_come_back_keyed_by_edge(self):
        g = path_graph(4)
        result = run_on_line_graph(g, lambda e: _Broadcast(), max_rounds=4)
        assert set(result.outputs) == {canonical_edge(u, v)
                                       for u, v in g.edges}
