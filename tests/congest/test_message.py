"""Unit tests for CONGEST message bit accounting."""

import pytest
from hypothesis import given, strategies as st

from repro.congest import Envelope, payload_bits, word_bits


class TestWordBits:
    def test_bool_is_one_bit(self):
        assert word_bits(True) == 1
        assert word_bits(False) == 1

    @pytest.mark.parametrize("value,bits", [
        (0, 2), (1, 2), (2, 3), (255, 9), (-255, 9), (2**20, 22),
    ])
    def test_int_bits(self, value, bits):
        assert word_bits(value) == bits

    def test_float_is_64_bits(self):
        assert word_bits(3.14) == 64

    def test_short_str_is_constant_tag(self):
        assert word_bits("reduce") == 4
        assert word_bits("") == 4

    def test_long_str_charged_per_char(self):
        assert word_bits("x" * 20) == 160

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            word_bits([1, 2])

    @given(st.integers(min_value=-(2**40), max_value=2**40))
    def test_int_bits_positive(self, value):
        assert word_bits(value) >= 2


class TestPayloadBits:
    def test_empty_payload(self):
        assert payload_bits(()) == 0

    def test_sum_of_words(self):
        payload = ("bid", 0.5, True)
        assert payload_bits(payload) == 4 + 64 + 1

    def test_envelope_bits(self):
        env = Envelope(src=1, dst=2, payload=("x", 7))
        assert env.bits == 4 + 4


class TestEnvelope:
    def test_frozen(self):
        env = Envelope(src=1, dst=2, payload=())
        with pytest.raises(AttributeError):
            env.src = 3
