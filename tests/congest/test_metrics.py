"""Tests for NetworkMetrics bookkeeping and RunResult helpers."""

from repro.congest import NetworkMetrics, RunResult, SynchronousNetwork
from repro.congest.node import IdleProgram
from repro.graphs import path_graph


class TestNetworkMetrics:
    def test_charge_rounds_breakdown(self):
        metrics = NetworkMetrics()
        metrics.charge_rounds(3, "phase-a")
        metrics.charge_rounds(2, "phase-a")
        metrics.charge_rounds(1, "phase-b")
        assert metrics.rounds == 6
        assert metrics.round_breakdown == {"phase-a": 5, "phase-b": 1}

    def test_merge(self):
        a = NetworkMetrics(rounds=2, messages=5, bits=100,
                           max_bits_per_edge_round=20, violations=1)
        a.round_breakdown["x"] = 2
        b = NetworkMetrics(rounds=3, messages=7, bits=50,
                           max_bits_per_edge_round=30, violations=0)
        b.round_breakdown["x"] = 3
        b.round_breakdown["y"] = 1
        a.merge(b)
        assert a.rounds == 5
        assert a.messages == 12
        assert a.bits == 150
        assert a.max_bits_per_edge_round == 30
        assert a.violations == 1
        assert a.round_breakdown == {"x": 5, "y": 1}


class TestRunResult:
    def test_output_set_filters_by_value(self):
        result = RunResult(outputs={1: "in", 2: "out", 3: "in"},
                           rounds=4, metrics=NetworkMetrics())
        assert result.output_set("in") == {1, 3}
        assert result.output_set("out") == {2}
        assert result.output_set("weird") == set()

    def test_idle_run_produces_outputs_for_all(self):
        g = path_graph(3)
        net = SynchronousNetwork(g, seed=0)
        result = net.run(lambda n: IdleProgram("x"), max_rounds=2)
        assert set(result.outputs) == set(g.nodes)
