"""Tests for the synchronous network simulator semantics."""

import pytest

from repro.congest import (
    CONGEST,
    LOCAL,
    IdleProgram,
    NodeProgram,
    SynchronousNetwork,
)
from repro.errors import BandwidthViolation, RoundLimitExceeded
from repro.graphs import path_graph


class EchoOnce(NodeProgram):
    """Broadcast own id once, record what was heard, halt on round 1."""

    def on_start(self, ctx):
        ctx.broadcast("hello", str(ctx.node))

    def on_round(self, ctx):
        heard = sorted(
            payload[1] for payload in ctx.inbox.values()
            if payload and payload[0] == "hello"
        )
        ctx.halt(heard)


class CountRounds(NodeProgram):
    def __init__(self, rounds):
        self.rounds = rounds

    def on_round(self, ctx):
        if ctx.round + 1 >= self.rounds:
            ctx.halt(ctx.round + 1)


class NeverHalts(NodeProgram):
    def on_round(self, ctx):
        ctx.broadcast("tick")


class BigTalker(NodeProgram):
    def on_round(self, ctx):
        ctx.broadcast("x" * 500)
        ctx.halt()


class TestDelivery:
    def test_start_messages_arrive_in_round_zero(self):
        g = path_graph(3)
        net = SynchronousNetwork(g, seed=1)
        result = net.run(lambda n: EchoOnce(), max_rounds=5)
        assert result.outputs[0] == ["1"]
        assert result.outputs[1] == ["0", "2"]
        assert result.outputs[2] == ["1"]

    def test_messages_to_halted_nodes_are_dropped(self):
        class HaltThenReceive(NodeProgram):
            def on_round(self, ctx):
                if ctx.node == 0:
                    ctx.halt("early")
                elif ctx.round == 0:
                    ctx.send(0, "late")
                else:
                    ctx.halt("done")

        g = path_graph(2)
        net = SynchronousNetwork(g, seed=1)
        result = net.run(lambda n: HaltThenReceive(), max_rounds=5)
        assert result.outputs[0] == "early"
        assert result.outputs[1] == "done"

    def test_send_to_non_neighbor_raises(self):
        class BadSender(NodeProgram):
            def on_round(self, ctx):
                ctx.send(99, "oops")

        g = path_graph(2)
        net = SynchronousNetwork(g, seed=1)
        with pytest.raises(ValueError):
            net.run(lambda n: BadSender(), max_rounds=2)

    def test_double_send_overwrites(self):
        class DoubleSender(NodeProgram):
            def on_round(self, ctx):
                if ctx.node == 0 and ctx.round == 0:
                    ctx.send(1, "first")
                    ctx.send(1, "second")
                elif ctx.node == 1 and ctx.round == 1:
                    ctx.halt([p for p in ctx.inbox.values()])
                elif ctx.round >= 1:
                    ctx.halt(None)

        g = path_graph(2)
        net = SynchronousNetwork(g, seed=1)
        result = net.run(lambda n: DoubleSender(), max_rounds=5)
        assert result.outputs[1] == [("second",)]


class TestTermination:
    def test_rounds_counted(self):
        g = path_graph(4)
        net = SynchronousNetwork(g, seed=0)
        result = net.run(lambda n: CountRounds(3), max_rounds=10)
        assert result.rounds == 3
        assert all(v == 3 for v in result.outputs.values())

    def test_round_limit_raises_with_pending(self):
        g = path_graph(3)
        net = SynchronousNetwork(g, seed=0)
        with pytest.raises(RoundLimitExceeded) as err:
            net.run(lambda n: NeverHalts(), max_rounds=4)
        assert err.value.rounds == 4
        assert len(err.value.pending) == 3

    def test_idle_program_finishes_immediately(self):
        g = path_graph(5)
        net = SynchronousNetwork(g, seed=0)
        result = net.run(lambda n: IdleProgram("done"), max_rounds=2)
        assert result.rounds == 0
        assert result.output_set("done") == set(g.nodes)

    def test_quiescence_halts(self):
        class SilentWaiter(NodeProgram):
            def on_round(self, ctx):
                pass  # waits forever for a message that never comes

        g = path_graph(3)
        net = SynchronousNetwork(g, seed=0)
        result = net.run(lambda n: SilentWaiter(), max_rounds=50,
                         quiescence_halts=True)
        assert result.rounds <= 2


class TestParticipants:
    def test_subset_run_restricts_neighbors(self):
        g = path_graph(5)  # 0-1-2-3-4
        net = SynchronousNetwork(g, seed=0)
        result = net.run(lambda n: EchoOnce(), participants=[0, 1, 3],
                         max_rounds=5)
        assert result.outputs[0] == ["1"]
        assert result.outputs[1] == ["0"]
        assert result.outputs[3] == []  # 2 and 4 are not participating

    def test_unknown_participant_rejected(self):
        g = path_graph(3)
        net = SynchronousNetwork(g, seed=0)
        with pytest.raises(Exception):
            net.run(lambda n: IdleProgram(), participants=[99])


class TestMetrics:
    def test_message_and_bit_counts(self):
        g = path_graph(2)
        net = SynchronousNetwork(g, seed=0)
        net.run(lambda n: EchoOnce(), max_rounds=3)
        assert net.metrics.messages == 2
        assert net.metrics.bits > 0
        assert net.metrics.rounds >= 1

    def test_metrics_accumulate_across_protocols(self):
        g = path_graph(3)
        net = SynchronousNetwork(g, seed=0)
        net.run(lambda n: EchoOnce(), max_rounds=3, label="first")
        net.run(lambda n: EchoOnce(), max_rounds=3, label="second")
        assert net.metrics.round_breakdown["first"] >= 1
        assert net.metrics.round_breakdown["second"] >= 1

    def test_congest_violation_recorded(self):
        g = path_graph(2)
        net = SynchronousNetwork(g, model=CONGEST, seed=0)
        net.run(lambda n: BigTalker(), max_rounds=3)
        assert net.metrics.violations > 0

    def test_congest_violation_strict_raises(self):
        g = path_graph(2)
        net = SynchronousNetwork(g, model=CONGEST, seed=0, strict=True)
        with pytest.raises(BandwidthViolation):
            net.run(lambda n: BigTalker(), max_rounds=3)

    def test_local_model_allows_big_messages(self):
        g = path_graph(2)
        net = SynchronousNetwork(g, model=LOCAL, seed=0)
        net.run(lambda n: BigTalker(), max_rounds=3)
        assert net.metrics.violations == 0

    def test_trace_hook_sees_messages(self):
        g = path_graph(2)
        net = SynchronousNetwork(g, seed=0)
        seen = []
        net.trace = lambda rnd, env: seen.append((rnd, env.src, env.dst))
        net.run(lambda n: EchoOnce(), max_rounds=3)
        assert len(seen) == 2


class TestDeterminism:
    def test_same_seed_same_outputs(self):
        class RandomReporter(NodeProgram):
            def on_round(self, ctx):
                ctx.halt(ctx.rng.random())

        g = path_graph(4)
        a = SynchronousNetwork(g, seed=5).run(
            lambda n: RandomReporter(), max_rounds=2
        )
        b = SynchronousNetwork(g, seed=5).run(
            lambda n: RandomReporter(), max_rounds=2
        )
        assert a.outputs == b.outputs

    def test_repeat_protocols_get_fresh_randomness(self):
        class RandomReporter(NodeProgram):
            def on_round(self, ctx):
                ctx.halt(ctx.rng.random())

        g = path_graph(4)
        net = SynchronousNetwork(g, seed=5)
        first = net.run(lambda n: RandomReporter(), max_rounds=2)
        second = net.run(lambda n: RandomReporter(), max_rounds=2)
        assert first.outputs != second.outputs

    def test_invalid_model_rejected(self):
        with pytest.raises(ValueError):
            SynchronousNetwork(path_graph(2), model="WEIRD")
