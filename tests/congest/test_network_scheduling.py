"""Wake-list scheduling, per-run metrics and payload-cache tests.

Covers the simulator edge paths the batch-execution PR touched:
``quiescence_halts`` early exit, ``RoundLimitExceeded`` pending-node
reporting, participant-subset neighbor filtering, the opt-in
``NodeContext.sleep`` wake-list path, the per-run ``RunResult.metrics``
delta, and the bounded payload bit-accounting cache.
"""

import pytest

from repro.congest import (
    NetworkMetrics,
    NodeProgram,
    SynchronousNetwork,
)
from repro.congest.message import payload_bits
from repro.errors import RoundLimitExceeded
from repro.graphs import path_graph


class Relay(NodeProgram):
    """Node 0 starts a token that is relayed down the path; each node
    halts after forwarding (or after receiving, at the end)."""

    def on_start(self, ctx):
        if ctx.node == 0:
            ctx.send(1, "token")
            ctx.halt("sent")

    def on_round(self, ctx):
        for src, payload in ctx.inbox.items():
            if payload == ("token",):
                nxt = ctx.node + 1
                if nxt in ctx.neighbors:
                    ctx.send(nxt, "token")
                ctx.halt("forwarded")


class HaltAfter(NodeProgram):
    def __init__(self, rounds):
        self.rounds = rounds

    def on_round(self, ctx):
        if ctx.round + 1 >= self.rounds:
            ctx.halt("done")


class NeverHalts(NodeProgram):
    def on_round(self, ctx):
        pass


class Sleeper(NodeProgram):
    """Parks immediately; wakes on mail, records it, halts."""

    def on_start(self, ctx):
        ctx.sleep()

    def on_round(self, ctx):
        assert ctx.inbox, "sleeper stepped without mail"
        ctx.halt(("woke", ctx.round, sorted(ctx.inbox)))


class LateSender(NodeProgram):
    """Waits a few rounds, then pings every neighbor and halts."""

    def __init__(self, wait):
        self.wait = wait

    def on_round(self, ctx):
        if ctx.round == self.wait:
            ctx.broadcast("ping")
            ctx.halt("pinged")


class TestQuiescence:
    def test_quiescence_does_not_cut_off_in_flight_relay(self):
        # The token takes one round per hop; every intermediate round
        # delivers exactly one message, so quiescence must not trigger
        # until the relay is over.
        g = path_graph(5)
        net = SynchronousNetwork(g, seed=0)
        result = net.run(lambda n: Relay(), max_rounds=50,
                         quiescence_halts=True)
        assert result.outputs[0] == "sent"
        assert result.outputs[4] == "forwarded"
        assert result.rounds >= 4

    def test_quiescent_run_reports_incomplete(self):
        g = path_graph(3)
        net = SynchronousNetwork(g, seed=0)
        result = net.run(lambda n: NeverHalts(), max_rounds=50,
                         quiescence_halts=True)
        assert result.completed is False
        assert result.output_set(None) == set(g.nodes)

    def test_completed_run_reports_complete(self):
        g = path_graph(3)
        net = SynchronousNetwork(g, seed=0)
        result = net.run(lambda n: HaltAfter(2), max_rounds=10)
        assert result.completed is True


class TestRoundLimitPending:
    def test_pending_names_exactly_the_unhalted(self):
        # Even nodes halt after one round; odd nodes never halt.
        g = path_graph(6)
        net = SynchronousNetwork(g, seed=0)

        def factory(node):
            return HaltAfter(1) if node % 2 == 0 else NeverHalts()

        with pytest.raises(RoundLimitExceeded) as err:
            net.run(factory, max_rounds=7)
        assert err.value.rounds == 7
        assert sorted(err.value.pending) == [1, 3, 5]

    def test_all_sleeping_deadlock_reports_sleepers(self):
        g = path_graph(4)
        net = SynchronousNetwork(g, seed=0)
        with pytest.raises(RoundLimitExceeded) as err:
            net.run(lambda n: Sleeper(), max_rounds=30)
        assert sorted(err.value.pending) == [0, 1, 2, 3]
        # the deadlock is detected without spinning the round budget:
        # the exception reports the rounds actually executed
        assert err.value.rounds == 0

    def test_all_sleeping_with_quiescence_ends_cleanly(self):
        g = path_graph(4)
        net = SynchronousNetwork(g, seed=0)
        result = net.run(lambda n: Sleeper(), max_rounds=30,
                         quiescence_halts=True)
        assert result.completed is False
        # round parity with the busy-wait twin: the final quiet round
        # is counted even though nobody was stepped
        class PollingWaiter(NodeProgram):
            def on_round(self, ctx):
                pass

        twin = SynchronousNetwork(g, seed=0).run(
            lambda n: PollingWaiter(), max_rounds=30,
            quiescence_halts=True,
        )
        assert result.rounds == twin.rounds


class TestParticipantSubset:
    def test_neighbor_filtering_and_delivery(self):
        # 0-1-2-3-4: only {1, 2, 4} participate.  1 and 2 stay
        # neighbors; 4 is isolated (3 is not playing).
        g = path_graph(5)
        net = SynchronousNetwork(g, seed=0)
        seen = {}

        class Inspect(NodeProgram):
            def __init__(self, node):
                self.node = node

            def on_start(self, ctx):
                seen[ctx.node] = tuple(ctx.neighbors)
                ctx.broadcast("hi")

            def on_round(self, ctx):
                ctx.halt(sorted(ctx.inbox))

        result = net.run(Inspect, participants=[1, 2, 4], max_rounds=5)
        assert seen[1] == (2,)
        assert seen[2] == (1,)
        assert seen[4] == ()
        assert result.outputs[1] == [2]
        assert result.outputs[2] == [1]
        assert result.outputs[4] == []


class TestRunStepwise:
    def test_checkpoint_every_zero_rejected(self):
        g = path_graph(2)
        net = SynchronousNetwork(g, seed=0)
        with pytest.raises(ValueError):
            next(net.run_stepwise(lambda n: HaltAfter(1), max_rounds=5,
                                  checkpoint_every=0))

    def test_snapshots_track_newly_halted_and_final(self):
        g = path_graph(4)
        net = SynchronousNetwork(g, seed=0)
        stepper = net.run_stepwise(lambda n: HaltAfter(n + 1),
                                   max_rounds=10, checkpoint_every=1)
        snapshots = []
        while True:
            try:
                snapshots.append(next(stepper))
            except StopIteration as stop:
                result = stop.value
                break
        assert result.completed
        # node i halts in round i (HaltAfter(i+1)); one per snapshot
        assert [s.newly_halted for s in snapshots[:4]] == [
            ((0, "done"),), ((1, "done"),), ((2, "done"),),
            ((3, "done"),),
        ]
        assert snapshots[-1].final
        assert snapshots[-1].halted == 4
        assert all(not s.final for s in snapshots[:-1])

    def test_stop_on_limit_returns_partial_instead_of_raising(self):
        g = path_graph(3)
        net = SynchronousNetwork(g, seed=0)
        result = net.run(lambda n: NeverHalts(), max_rounds=4,
                         stop_on_limit=True)
        assert result.completed is False
        assert result.rounds == 4
        assert result.output_set(None) == set(g.nodes)


class TestSleepWake:
    def test_sleeper_woken_by_late_mail(self):
        g = path_graph(2)
        net = SynchronousNetwork(g, seed=0)

        def factory(node):
            return LateSender(3) if node == 0 else Sleeper()

        result = net.run(factory, max_rounds=20)
        # the ping is sent in round 3 and delivered in round 4
        assert result.outputs[1] == ("woke", 4, [0])
        assert result.outputs[0] == "pinged"
        assert result.rounds == 5

    def test_sleeping_matches_polling_outputs_and_rounds(self):
        """A protocol rewritten with sleep() must agree with its polling
        twin on outputs and round count (only the work differs)."""

        class PollingWaiter(NodeProgram):
            def on_round(self, ctx):
                if ctx.inbox:
                    ctx.halt(("woke", ctx.round, sorted(ctx.inbox)))

        g = path_graph(2)

        def sleepy(node):
            return LateSender(5) if node == 0 else Sleeper()

        def polling(node):
            return LateSender(5) if node == 0 else PollingWaiter()

        a = SynchronousNetwork(g, seed=3).run(sleepy, max_rounds=20)
        b = SynchronousNetwork(g, seed=3).run(polling, max_rounds=20)
        assert a.outputs == b.outputs
        assert a.rounds == b.rounds


class TestPerRunMetrics:
    def test_run_metrics_are_isolated_deltas(self):
        g = path_graph(4)
        net = SynchronousNetwork(g, seed=0)
        first = net.run(lambda n: Relay(), max_rounds=20, label="first")
        second = net.run(lambda n: Relay(), max_rounds=20, label="second")
        assert first.metrics is not net.metrics
        assert second.metrics is not net.metrics
        # each delta carries only its own run
        assert first.metrics.rounds == first.rounds
        assert second.metrics.rounds == second.rounds
        assert first.metrics.round_breakdown == {"first": first.rounds}
        assert second.metrics.round_breakdown == {"second": second.rounds}
        assert first.metrics.messages == second.metrics.messages
        # the network counter is cumulative across both
        assert net.metrics.messages == (
            first.metrics.messages + second.metrics.messages
        )
        assert net.metrics.rounds == first.rounds + second.rounds
        assert net.metrics.round_breakdown == {
            "first": first.rounds, "second": second.rounds,
        }

    def test_per_run_max_bits_not_cumulative(self):
        class Small(NodeProgram):
            def on_round(self, ctx):
                ctx.broadcast("x")
                ctx.halt()

        class Big(NodeProgram):
            def on_round(self, ctx):
                ctx.broadcast("x" * 64)
                ctx.halt()

        g = path_graph(2)
        net = SynchronousNetwork(g, model="LOCAL", seed=0)
        big = net.run(lambda n: Big(), max_rounds=3)
        small = net.run(lambda n: Small(), max_rounds=3)
        assert small.metrics.max_bits_per_edge_round < \
            big.metrics.max_bits_per_edge_round
        assert net.metrics.max_bits_per_edge_round == \
            big.metrics.max_bits_per_edge_round

    def test_merge_sums_payload_cache(self):
        a = NetworkMetrics(payload_cache={"hits": 2, "misses": 1})
        b = NetworkMetrics(payload_cache={"hits": 3, "evictions": 4})
        a.merge(b)
        assert a.payload_cache == {"hits": 5, "misses": 1, "evictions": 4}

    def test_cache_hit_rate(self):
        metrics = NetworkMetrics(payload_cache={"hits": 3, "misses": 1})
        assert metrics.cache_hit_rate() == 0.75
        assert NetworkMetrics().cache_hit_rate() == 0.0


class TestPayloadCache:
    def test_hits_and_misses_counted(self):
        class Chatty(NodeProgram):
            def on_round(self, ctx):
                ctx.broadcast("same-tag")
                if ctx.round >= 2:
                    ctx.halt()

        g = path_graph(3)
        net = SynchronousNetwork(g, seed=0)
        result = net.run(lambda n: Chatty(), max_rounds=10)
        cache = net.metrics.payload_cache
        # one unique payload: 1 miss, everything else hits
        assert cache["misses"] == 1
        assert cache["hits"] == net.metrics.messages - 1
        assert result.metrics.payload_cache == cache

    def test_eviction_keeps_cache_bounded_and_bits_exact(self):
        class Unique(NodeProgram):
            def on_round(self, ctx):
                # a fresh payload every node and round: all misses
                ctx.broadcast("tag", ctx.node * 1000 + ctx.round)
                if ctx.round >= 5:
                    ctx.halt()

        g = path_graph(4)
        net = SynchronousNetwork(g, seed=0)
        net._bits_cache_limit = 3
        net.run(lambda n: Unique(), max_rounds=10)
        assert len(net._bits_cache) <= 3
        assert net.metrics.payload_cache["evictions"] > 0
        assert net.metrics.payload_cache["misses"] > 3
        # metering stayed exact despite evictions
        expected = payload_bits(("tag", 2003))
        assert net.metrics.bits > 0
        assert net.metrics.max_bits_per_edge_round >= expected

    def test_evicted_payload_can_be_recached(self):
        net = SynchronousNetwork(path_graph(2), seed=0)
        net._bits_cache_limit = 2
        cache = net._bits_cache
        for payload in (("a",), ("b",), ("c",)):
            bits = payload_bits(payload)
            if len(cache) >= net._bits_cache_limit:
                del cache[next(iter(cache))]
            cache[payload] = bits
        assert ("a",) not in cache
        assert set(cache) == {("b",), ("c",)}
