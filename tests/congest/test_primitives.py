"""Tests for the CONGEST primitives — also simulator validation:
flooding distances must equal networkx shortest-path lengths."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.congest import bfs_tree, convergecast_sum, flood_distances
from repro.errors import SimulationError
from repro.graphs import cycle_graph, empty_graph, gnp_graph, path_graph


class TestFlood:
    def test_path_distances(self):
        distances, rounds = flood_distances(path_graph(6), 0)
        assert distances == {i: i for i in range(6)}
        assert rounds >= 5

    def test_matches_networkx(self, topology):
        source = next(iter(sorted(topology.nodes, key=repr)))
        distances, _ = flood_distances(topology, source)
        expected = nx.single_source_shortest_path_length(topology, source)
        for v in topology.nodes:
            assert distances[v] == expected.get(v)

    @given(st.integers(min_value=0, max_value=40))
    @settings(max_examples=15, deadline=None)
    def test_property_random_graphs(self, seed):
        g = gnp_graph(20, 0.15, seed=seed)
        distances, _ = flood_distances(g, 0)
        expected = nx.single_source_shortest_path_length(g, 0)
        for v in g.nodes:
            assert distances[v] == expected.get(v)

    def test_unreachable_nodes_get_none(self):
        g = empty_graph(4)
        g.add_edge(0, 1)
        distances, _ = flood_distances(g, 0)
        assert distances[1] == 1
        assert distances[2] is None and distances[3] is None

    def test_unknown_source_rejected(self):
        with pytest.raises(SimulationError):
            flood_distances(path_graph(3), 99)

    def test_rounds_equal_eccentricity_ish(self):
        distances, rounds = flood_distances(cycle_graph(10), 0)
        assert max(d for d in distances.values() if d is not None) == 5
        assert rounds <= 8


class TestBfsTree:
    def test_root_has_no_parent(self):
        parents = bfs_tree(path_graph(5), 0)
        assert parents[0] is None

    def test_parents_form_shortest_path_tree(self):
        g = gnp_graph(25, 0.2, seed=3)
        parents = bfs_tree(g, 0)
        expected = nx.single_source_shortest_path_length(g, 0)
        for v, parent in parents.items():
            if v == 0 or parent is None:
                continue
            assert expected[v] == expected[parent] + 1
            assert g.has_edge(v, parent)

    def test_unknown_source_rejected(self):
        with pytest.raises(SimulationError):
            bfs_tree(path_graph(3), 99)


class TestConvergecast:
    def test_sums_values_to_root(self):
        g = gnp_graph(20, 0.25, seed=4)
        parents = bfs_tree(g, 0)
        values = {v: v + 1 for v in g.nodes if parents.get(v) is not None
                  or v == 0}
        total, height = convergecast_sum(
            g, {v: p for v, p in parents.items()
                if p is not None or v == 0},
            values, 0,
        )
        assert total == sum(values.values())
        assert height >= 0

    def test_single_node_tree(self):
        total, height = convergecast_sum(
            empty_graph(1), {0: None}, {0: 42}, 0,
        )
        assert total == 42
        assert height == 0

    def test_path_tree_height(self):
        parents = {0: None, 1: 0, 2: 1, 3: 2}
        total, height = convergecast_sum(
            path_graph(4), parents, {v: 1 for v in range(4)}, 0,
        )
        assert total == 4
        assert height == 3
