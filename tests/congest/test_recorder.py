"""Tests for the execution recorder."""

import pytest

from repro.congest import ExecutionRecorder, SynchronousNetwork
from repro.core import maxis_local_ratio_layers
from repro.graphs import assign_node_weights, gnp_graph, path_graph
from repro.mis import luby_mis


class TestRecorder:
    def test_records_luby_run(self):
        g = gnp_graph(30, 0.2, seed=1)
        net = SynchronousNetwork(g, seed=2)
        recorder = ExecutionRecorder().attach(net)
        _, rounds = luby_mis(g, network=net)
        assert recorder.rounds == rounds
        assert sum(recorder.message_series()) == net.metrics.messages

    def test_active_series_non_increasing(self):
        """Halting-only protocols: participation shrinks monotonically."""

        g = gnp_graph(25, 0.25, seed=3)
        net = SynchronousNetwork(g, seed=4)
        recorder = ExecutionRecorder().attach(net)
        luby_mis(g, network=net)
        series = recorder.active_series()
        assert all(b <= a for a, b in zip(series, series[1:]))
        assert series[-1] == 0

    def test_algorithm_2_cascade_visible(self):
        g = assign_node_weights(gnp_graph(25, 0.2, seed=5), 64, seed=6)
        net = SynchronousNetwork(g, seed=7)
        recorder = ExecutionRecorder().attach(net)
        maxis_local_ratio_layers(g, network=net)
        summary = recorder.summary()
        assert summary["rounds"] > 0
        assert summary["messages"] > 0
        assert summary["peak_round_messages"] >= 1

    def test_busiest_round(self):
        g = path_graph(6)
        net = SynchronousNetwork(g, seed=8)
        recorder = ExecutionRecorder().attach(net)
        luby_mis(g, network=net)
        busiest = recorder.busiest_round()
        assert busiest.sent == max(recorder.message_series())

    def test_busiest_round_empty_raises(self):
        with pytest.raises(ValueError):
            ExecutionRecorder().busiest_round()

    def test_bits_accounted(self):
        g = path_graph(4)
        net = SynchronousNetwork(g, seed=9)
        recorder = ExecutionRecorder().attach(net)
        luby_mis(g, network=net)
        assert sum(r.bits_sent for r in recorder.records) == \
            net.metrics.bits
