"""Strict-CONGEST compliance: every reactive protocol in the library
must fit its messages inside the O(log n)-bit bandwidth.  Running under
``strict=True`` turns any oversized message into a hard failure."""

from repro.congest import CONGEST, SynchronousNetwork
from repro.core import maxis_local_ratio_coloring, maxis_local_ratio_layers
from repro.core.proposal_matching import bipartite_proposal_matching
from repro.graphs import (
    assign_node_weights,
    gnp_graph,
    random_bipartite_graph,
)
from repro.matching import bipartite_sides, israeli_itai_matching
from repro.mis import luby_mis, nearly_maximal_is


def strict_network(graph, seed=0):
    return SynchronousNetwork(graph, model=CONGEST, seed=seed, strict=True)


class TestStrictCompliance:
    def test_luby(self):
        g = gnp_graph(40, 0.15, seed=1)
        mis, _ = luby_mis(g, network=strict_network(g, 2))
        assert mis

    def test_ghaffari_nmis(self):
        g = gnp_graph(40, 0.15, seed=3)
        independent, _, _ = nearly_maximal_is(
            g, iterations=20, k=2, network=strict_network(g, 4),
        )
        assert independent

    def test_algorithm_2(self):
        g = assign_node_weights(gnp_graph(30, 0.2, seed=5), 64, seed=6)
        result = maxis_local_ratio_layers(g, network=strict_network(g, 7))
        assert result.independent_set

    def test_algorithm_3(self):
        g = assign_node_weights(gnp_graph(30, 0.2, seed=8), 64, seed=9)
        result = maxis_local_ratio_coloring(g,
                                            network=strict_network(g, 10))
        assert result.independent_set

    def test_israeli_itai(self):
        g = gnp_graph(30, 0.2, seed=11)
        matching, _ = israeli_itai_matching(
            g, network=strict_network(g, 12),
        )
        assert matching

    def test_proposal(self):
        g = random_bipartite_graph(15, 15, 0.25, seed=13)
        left, right = bipartite_sides(g)
        result = bipartite_proposal_matching(
            g, left, right, network=strict_network(g, 14),
        )
        assert result.matching

    def test_weights_polynomial_in_n_fit(self):
        """The paper's standing assumption: W ≤ poly(n) so one weight
        fits in a message.  W = n³ must pass strict mode."""

        g = assign_node_weights(gnp_graph(25, 0.2, seed=15), 25 ** 3,
                                seed=16)
        result = maxis_local_ratio_layers(g, network=strict_network(g, 17))
        assert result.independent_set
