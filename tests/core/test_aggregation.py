"""Tests for the local-aggregation framework (Defs 2.4–2.7, Thm 2.8/2.9)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.congest import canonical_edge
from repro.core import (
    ALGORITHM_2_AGGREGATES,
    AND,
    COUNT,
    MAX,
    MIN,
    OR,
    SUM,
    AggregateFunction,
    fold_over_hosted_neighbors,
    theorem_2_8_simulation_cost,
    verify_aggregate,
)
from repro.errors import AlgorithmContractViolation
from repro.graphs import gnp_graph, random_regular_graph, star_graph


class TestAggregateLaws:
    @pytest.mark.parametrize("func", [AND, OR, SUM, MIN, MAX],
                             ids=lambda f: f.name)
    def test_small_sample(self, func):
        verify_aggregate(func, [1, 0, 3, 2])

    def test_count_over_boolean_indicators(self):
        verify_aggregate(COUNT, [True, False, True, True])

    @given(st.lists(st.integers(min_value=0, max_value=9), max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_sum_partition_law(self, sample):
        verify_aggregate(SUM, sample)

    @given(st.lists(st.booleans(), max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_and_or_partition_laws(self, sample):
        verify_aggregate(AND, sample)
        verify_aggregate(OR, sample)

    @given(st.lists(st.integers(min_value=-50, max_value=50), max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_min_max_partition_laws(self, sample):
        verify_aggregate(MIN, sample)
        verify_aggregate(MAX, sample)

    def test_non_aggregate_detected(self):
        """Subtraction is order sensitive — the checker must reject it."""

        bad = AggregateFunction("sub", 0, lambda a, b: a - b)
        with pytest.raises(AlgorithmContractViolation):
            verify_aggregate(bad, [3, 1, 2])

    def test_algorithm_2_uses_only_aggregates(self):
        """Theorem 2.9's function list: and/or/sum(/max for layers)."""

        names = {f.name for f in ALGORITHM_2_AGGREGATES}
        assert {"and", "or", "sum"} <= names


class TestTheorem28Cost:
    def test_star_naive_load_scales_with_degree(self):
        costs = [theorem_2_8_simulation_cost(star_graph(d)).naive_max_load
                 for d in (4, 8, 16)]
        assert costs[0] < costs[1] < costs[2]

    def test_aggregated_load_is_two_everywhere(self):
        for graph in (star_graph(10), gnp_graph(20, 0.3, seed=1),
                      random_regular_graph(4, 16, seed=2)):
            cost = theorem_2_8_simulation_cost(graph)
            assert cost.aggregated_max_load == 2

    def test_naive_dominates_aggregated(self):
        g = random_regular_graph(6, 20, seed=3)
        cost = theorem_2_8_simulation_cost(g)
        assert cost.naive_max_load >= cost.aggregated_max_load
        assert cost.naive_total >= cost.aggregated_total

    def test_empty_graph(self):
        import networkx as nx

        cost = theorem_2_8_simulation_cost(nx.Graph())
        assert cost.naive_max_load == 0


class TestFoldOverHostedNeighbors:
    def test_two_sided_fold_equals_direct_aggregate(self):
        """The heart of Theorem 2.8: joining the two endpoints' partial
        aggregates equals the aggregate over all line-neighbors."""

        g = gnp_graph(12, 0.35, seed=4)
        values = {
            canonical_edge(u, v): (hash((u, v)) % 7) + 1
            for u, v in g.edges
        }
        for u, v in g.edges:
            edge = canonical_edge(u, v)
            direct = []
            for x in (u, v):
                for w in g.neighbors(x):
                    if {x, w} != {u, v}:
                        direct.append(values[canonical_edge(x, w)])
            for func in (SUM, MAX, OR):
                left = fold_over_hosted_neighbors(g, edge, u, values, func)
                right = fold_over_hosted_neighbors(g, edge, v, values, func)
                assert func.join(left, right) == func(direct)

    def test_rejects_non_endpoint(self):
        g = star_graph(3)
        with pytest.raises(AlgorithmContractViolation):
            fold_over_hosted_neighbors(g, (0, 1), 2, {}, SUM)
