"""Deep property tests for the Appendix B.3 attenuation machinery.

Claim B.6 in full generality: with arbitrary attenuations, the forward
traversal's endpoint mass and the backward traversal's per-node mass
must equal Σ_P Π_{v ∈ P} α(v) over the enumerated augmenting paths —
not just counts (α ≡ 1) but weighted sums.  Also covers Claim B.8's
attenuation-update envelope and Lemma B.10's deactivation accounting
under an adversarially tiny good-round cap (failure injection).
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import BipartiteAugmentingPhase, enumerate_augmenting_paths
from repro.graphs import random_bipartite_graph
from repro.matching import bipartite_sides


def greedy_maximal_matching(graph):
    matching, used = set(), set()
    for u, v in sorted(graph.edges, key=repr):
        if u not in used and v not in used:
            matching.add(frozenset((u, v)))
            used |= {u, v}
    return matching


def make_phase(graph, matching, d, seed=0, **kwargs):
    a, b = bipartite_sides(graph)
    return BipartiteAugmentingPhase(graph, a, b, matching, d=d, eps=0.5,
                                    seed=seed, **kwargs)


def brute_force_mass(graph, matching, d, alpha, b_side):
    """Σ_P Π α over enumerated paths, per endpoint and per node."""

    per_endpoint = {}
    per_node = {}
    for path in enumerate_augmenting_paths(graph, matching, d):
        mass = math.prod(alpha.get(v, 1.0) for v in path)
        end = path[-1] if path[-1] in b_side else path[0]
        per_endpoint[end] = per_endpoint.get(end, 0.0) + mass
        for v in path:
            per_node[v] = per_node.get(v, 0.0) + mass
    return per_endpoint, per_node


class TestWeightedTraversal:
    @given(st.integers(min_value=0, max_value=40))
    @settings(max_examples=15, deadline=None)
    def test_forward_mass_equals_weighted_path_sum(self, seed):
        g = random_bipartite_graph(6, 6, 0.4, seed=seed)
        matching = greedy_maximal_matching(g)
        phase = make_phase(g, matching, d=3, seed=seed)
        # Perturb attenuations to distinct powers of 1/2 per node.
        for index, v in enumerate(sorted(phase.alpha, key=repr)):
            if v in phase.b_side and v in phase.mate:
                continue  # matched B-nodes keep α = 1 (paper invariant)
            phase.alpha[v] = 2.0 ** (-(index % 4))
        _, b_side = bipartite_sides(g)
        mass, contrib, raw = phase._forward(phase.scope)
        expected_end, expected_node = brute_force_mass(
            g, matching, 3, phase.alpha, b_side,
        )
        for b in b_side:
            assert mass.get(b, 0.0) == pytest.approx(
                expected_end.get(b, 0.0)
            )

    @given(st.integers(min_value=0, max_value=40))
    @settings(max_examples=15, deadline=None)
    def test_backward_mass_equals_per_node_weighted_sum(self, seed):
        g = random_bipartite_graph(6, 6, 0.4, seed=seed)
        matching = greedy_maximal_matching(g)
        phase = make_phase(g, matching, d=3, seed=seed)
        for index, v in enumerate(sorted(phase.alpha, key=repr)):
            if v in phase.b_side and v in phase.mate:
                continue
            phase.alpha[v] = 2.0 ** (-(index % 3))
        _, b_side = bipartite_sides(g)
        mass, contrib, raw = phase._forward(phase.scope)
        through = phase._backward(mass, contrib, raw)
        _, expected_node = brute_force_mass(
            g, matching, 3, phase.alpha, b_side,
        )
        for v, expected in expected_node.items():
            assert through.get(v, 0.0) == pytest.approx(expected)


class TestAttenuationUpdates:
    def test_heavy_nodes_shrink_light_nodes_recover(self):
        g = random_bipartite_graph(8, 8, 0.5, seed=3)
        matching = greedy_maximal_matching(g)
        phase = make_phase(g, matching, d=3, seed=3)
        heavy_node = next(iter(sorted(phase.a_side, key=repr)))
        # Force one heavy node and one recovering node.
        phase.alpha[heavy_node] = 0.5
        through = {heavy_node: 1.0}  # >= 1/(10d)
        phase._update_attenuations(through)
        shrink = phase.k ** (-2.0 * phase.d)
        assert phase.alpha[heavy_node] == pytest.approx(
            max(0.5 * shrink, phase.alpha_floor)
        )

    def test_attenuation_never_below_floor(self):
        g = random_bipartite_graph(6, 6, 0.5, seed=4)
        matching = greedy_maximal_matching(g)
        phase = make_phase(g, matching, d=3, seed=4)
        through = {v: 1.0 for v in phase.alpha}
        for _ in range(50):
            phase._update_attenuations(through)
        for v in phase.a_side | (phase.b_side - set(phase.mate)):
            assert phase.alpha[v] >= phase.alpha_floor

    def test_recovery_capped_at_initial(self):
        g = random_bipartite_graph(6, 6, 0.5, seed=5)
        matching = greedy_maximal_matching(g)
        phase = make_phase(g, matching, d=1, seed=5)
        for _ in range(10):
            phase._update_attenuations({})  # nobody heavy: all recover
        for v, alpha in phase.alpha.items():
            assert alpha <= phase.alpha0[v] + 1e-12


class TestForcedDeactivation:
    def test_tiny_good_cap_triggers_deactivation(self):
        """Failure injection: with a good-round cap of zero every node
        that has a good iteration is deactivated; the phase must still
        terminate with a valid matching and report the deactivations."""

        g = random_bipartite_graph(8, 8, 0.6, seed=6)
        phase = make_phase(g, set(), d=1, seed=6)
        phase.good_cap = 0
        outcome = phase.run()
        from repro.graphs import check_matching

        check_matching(g, [tuple(e) for e in phase.matching])
        # With cap 0 either everything matched fast or somebody was
        # deactivated; both are legal, but the bookkeeping must agree.
        for v in outcome.deactivated:
            assert v not in phase.scope

    def test_deactivated_nodes_excluded_from_paths(self):
        g = random_bipartite_graph(8, 8, 0.6, seed=7)
        phase = make_phase(g, set(), d=1, seed=7)
        phase.good_cap = 0
        outcome = phase.run()
        if outcome.drained:
            remaining = enumerate_augmenting_paths(
                g, phase.matching, 1, active=phase.scope,
            )
            assert not remaining
