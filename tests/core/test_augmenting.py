"""Tests for the augmenting-path machinery (Hopcroft–Karp framework)."""

import itertools

import pytest

from repro.core import (
    augment_with_disjoint_paths,
    build_conflict_graph,
    canonical_path,
    enumerate_augmenting_paths,
    flip_augmenting_path,
    shortest_augmenting_path_length,
    verify_hk_phase,
)
from repro.errors import AlgorithmContractViolation
from repro.graphs import (
    check_matching,
    cycle_graph,
    gnp_graph,
    is_augmenting_path,
    path_graph,
)


def brute_force_paths(graph, matching, length):
    """Reference enumeration by checking every vertex sequence."""

    found = set()
    for nodes in itertools.permutations(graph.nodes, length + 1):
        if is_augmenting_path(graph, matching, nodes):
            found.add(canonical_path(nodes))
    return found


class TestEnumeration:
    def test_length_one_paths_are_free_edges(self):
        g = path_graph(4)
        paths = enumerate_augmenting_paths(g, set(), 1)
        assert {frozenset(p) for p in paths} == {
            frozenset(e) for e in g.edges
        }

    @pytest.mark.parametrize("length", [1, 3])
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_brute_force(self, length, seed):
        g = gnp_graph(8, 0.35, seed=seed)
        matching = set()
        if length == 3:
            # Seed a small matching so longer paths exist.
            for u, v in list(g.edges)[:2]:
                if not ({u, v} & {x for e in matching for x in e}):
                    matching.add(frozenset((u, v)))
        ours = set(enumerate_augmenting_paths(g, matching, length))
        reference = brute_force_paths(g, matching, length)
        assert ours == reference

    def test_even_length_rejected(self):
        with pytest.raises(AlgorithmContractViolation):
            enumerate_augmenting_paths(path_graph(3), set(), 2)

    def test_active_restriction(self):
        g = path_graph(2)
        assert enumerate_augmenting_paths(g, set(), 1, active={0}) == []

    def test_cap_truncates(self):
        g = gnp_graph(12, 0.5, seed=1)
        paths = enumerate_augmenting_paths(g, set(), 1, cap=3)
        assert len(paths) == 3

    def test_path_graph_length_three(self):
        g = path_graph(4)
        matching = {frozenset((1, 2))}
        paths = enumerate_augmenting_paths(g, matching, 3)
        assert paths == [canonical_path((0, 1, 2, 3))]


class TestFlip:
    def test_flip_grows_matching_by_one(self):
        matching = {frozenset((1, 2))}
        flipped = flip_augmenting_path(matching, (0, 1, 2, 3))
        assert flipped == {frozenset((0, 1)), frozenset((2, 3))}

    def test_flip_free_edge(self):
        flipped = flip_augmenting_path(set(), (0, 1))
        assert flipped == {frozenset((0, 1))}

    def test_flip_rejects_wrong_alternation(self):
        with pytest.raises(AlgorithmContractViolation):
            flip_augmenting_path({frozenset((0, 1))}, (0, 1))

    def test_disjoint_augmentation(self):
        g = path_graph(8)
        paths = [(0, 1), (3, 4), (6, 7)]
        matching = augment_with_disjoint_paths(set(), paths)
        check_matching(g, [tuple(e) for e in matching])
        assert len(matching) == 3

    def test_intersecting_paths_rejected(self):
        with pytest.raises(AlgorithmContractViolation):
            augment_with_disjoint_paths(set(), [(0, 1), (1, 2)])


class TestConflictGraph:
    def test_conflicts_are_shared_vertices(self):
        paths = [(0, 1), (1, 2), (3, 4)]
        cg = build_conflict_graph(paths)
        assert cg.has_edge(0, 1)
        assert not cg.has_edge(0, 2)
        assert cg.number_of_nodes() == 3

    def test_empty(self):
        assert build_conflict_graph([]).number_of_nodes() == 0


class TestShortestLength:
    def test_empty_matching_has_length_one(self):
        assert shortest_augmenting_path_length(path_graph(4), set()) == 1

    def test_after_maximal_matching_longer(self):
        g = path_graph(4)
        matching = {frozenset((1, 2))}
        assert shortest_augmenting_path_length(g, matching) == 3

    def test_perfect_matching_has_none(self):
        g = path_graph(4)
        matching = {frozenset((0, 1)), frozenset((2, 3))}
        assert shortest_augmenting_path_length(g, matching) is None

    def test_hk_length_increase_fact(self):
        """Flipping a maximal set of shortest paths raises the shortest
        augmenting-path length (the classical HK fact)."""

        g = cycle_graph(10)
        length_before = shortest_augmenting_path_length(g, set())
        paths = enumerate_augmenting_paths(g, set(), 1)
        chosen = []
        used = set()
        for p in paths:
            if not (used & set(p)):
                chosen.append(p)
                used |= set(p)
        # make maximal greedily
        matching = augment_with_disjoint_paths(set(), chosen)
        length_after = shortest_augmenting_path_length(g, matching)
        assert length_before == 1
        assert length_after is None or length_after > 1


class TestVerifyPhase:
    def test_accepts_valid(self):
        g = path_graph(4)
        verify_hk_phase(g, set(), [(0, 1), (2, 3)])

    def test_rejects_invalid(self):
        g = path_graph(4)
        with pytest.raises(AlgorithmContractViolation):
            verify_hk_phase(g, set(), [(0, 1, 2)])
