"""Tests for the CONGEST (1+ε) matching (Appendix B.3).

The key unit-level claims are Claims B.5/B.6: the forward traversal
counts augmenting paths exactly, and the backward traversal computes
per-node path counts exactly.  These are verified against brute-force
path enumeration — this is also what reproduces Figure 1.
"""

import math

import pytest

from repro.core import (
    BipartiteAugmentingPhase,
    bipartite_matching_1eps,
    congest_matching_1eps,
    congest_matching_1eps_stages,
    enumerate_augmenting_paths,
    lemma_b11_budget,
    precision_round_factor,
    shortest_augmenting_path_length,
)
from repro.graphs import check_matching, gnp_graph, random_bipartite_graph
from repro.matching import bipartite_sides, hopcroft_karp, optimum_cardinality


def make_phase(graph, matching, d, seed=0):
    a, b = bipartite_sides(graph)
    return BipartiteAugmentingPhase(graph, a, b, matching, d=d, eps=0.5,
                                    seed=seed)


class TestForwardTraversalCounts:
    """Claim B.5: with α ≡ 1 the traversal counts augmenting paths."""

    @pytest.mark.parametrize("seed", range(4))
    def test_endpoint_counts_match_enumeration_d1(self, seed):
        g = random_bipartite_graph(6, 6, 0.4, seed=seed)
        phase = make_phase(g, set(), d=1, seed=seed)
        counts, _, _ = phase._forward(phase.scope, use_alpha=False)
        paths = enumerate_augmenting_paths(g, set(), 1)
        per_endpoint = {}
        _, b_side = bipartite_sides(g)
        for p in paths:
            end = p[0] if p[0] in b_side else p[-1]
            per_endpoint[end] = per_endpoint.get(end, 0) + 1
        for b, count in per_endpoint.items():
            assert counts.get(b, 0) == pytest.approx(count)

    @pytest.mark.parametrize("seed", range(4))
    def test_endpoint_counts_match_enumeration_d3(self, seed):
        g = random_bipartite_graph(7, 7, 0.35, seed=seed)
        # Build some matching with no length-1 augmenting path left:
        # use a maximal matching (greedy).
        matching = set()
        used = set()
        for u, v in sorted(g.edges, key=repr):
            if u not in used and v not in used:
                matching.add(frozenset((u, v)))
                used |= {u, v}
        phase = make_phase(g, matching, d=3, seed=seed)
        counts, _, _ = phase._forward(phase.scope, use_alpha=False)
        paths = enumerate_augmenting_paths(g, matching, 3)
        a_side, b_side = bipartite_sides(g)
        per_endpoint = {}
        for p in paths:
            # Paths run between a free A-node and a free B-node; count
            # only those oriented A->B like the traversal does.
            end = p[-1] if p[-1] in b_side else p[0]
            start = p[0] if p[-1] in b_side else p[-1]
            if start in a_side:
                per_endpoint[end] = per_endpoint.get(end, 0) + 1
        for b in b_side:
            assert counts.get(b, 0) == pytest.approx(
                per_endpoint.get(b, 0)
            )


class TestBackwardTraversalCounts:
    """Claim B.6: every node learns its through-path count."""

    @pytest.mark.parametrize("seed", range(4))
    def test_per_node_counts_match_enumeration(self, seed):
        g = random_bipartite_graph(7, 7, 0.35, seed=seed)
        matching = set()
        used = set()
        for u, v in sorted(g.edges, key=repr):
            if u not in used and v not in used:
                matching.add(frozenset((u, v)))
                used |= {u, v}
        phase = make_phase(g, matching, d=3, seed=seed)
        counts, contrib, raw = phase._forward(phase.scope, use_alpha=False)
        through = phase._backward(counts, contrib, raw)
        paths = enumerate_augmenting_paths(g, matching, 3)
        per_node = {}
        for p in paths:
            for v in p:
                per_node[v] = per_node.get(v, 0) + 1
        for v, count in per_node.items():
            assert through.get(v, 0) == pytest.approx(count)

    def test_attenuated_mass_is_product_along_paths(self):
        """With non-trivial α the endpoint mass is Σ_P Π_{v∈P} α(v)."""

        g = random_bipartite_graph(5, 5, 0.5, seed=9)
        phase = make_phase(g, set(), d=1, seed=9)
        a_side, b_side = bipartite_sides(g)
        counts, _, _ = phase._forward(phase.scope)
        k = phase.k
        for b in b_side:
            expected = sum(
                1.0 / k for a in g.neighbors(b) if a not in phase.mate
            )
            assert counts.get(b, 0) == pytest.approx(expected)


class TestPhase:
    @pytest.mark.parametrize("seed", range(3))
    def test_phase_drains_length_one(self, seed):
        g = random_bipartite_graph(8, 8, 0.3, seed=seed)
        phase = make_phase(g, set(), d=1, seed=seed)
        outcome = phase.run()
        assert outcome.drained
        active = phase.scope
        assert not enumerate_augmenting_paths(
            g, phase.matching, 1, active=active
        )

    def test_flipped_paths_yield_valid_matching(self):
        g = random_bipartite_graph(10, 10, 0.25, seed=5)
        phase = make_phase(g, set(), d=1, seed=5)
        phase.run()
        check_matching(g, [tuple(e) for e in phase.matching])


class TestBipartiteFull:
    @pytest.mark.parametrize("seed", range(3))
    def test_quality_against_hopcroft_karp(self, seed):
        g = random_bipartite_graph(10, 10, 0.3, seed=seed)
        a, b = bipartite_sides(g)
        eps = 0.5
        matching, deactivated = bipartite_matching_1eps(
            g, a, b, eps=eps, seed=seed
        )
        check_matching(g, [tuple(e) for e in matching])
        opt = len(hopcroft_karp(g))
        assert (1 + eps) * (len(matching) + len(deactivated)) >= opt

    def test_no_short_paths_remain_among_active(self):
        g = random_bipartite_graph(9, 9, 0.3, seed=7)
        a, b = bipartite_sides(g)
        eps = 0.5
        matching, deactivated = bipartite_matching_1eps(
            g, a, b, eps=eps, seed=7
        )
        max_length = 2 * math.ceil(1 / eps) + 1
        remaining = shortest_augmenting_path_length(
            g, matching, active=set(g.nodes) - deactivated,
            max_length=max_length,
        )
        assert remaining is None


class TestGeneralGraphs:
    @pytest.mark.parametrize("seed", range(3))
    def test_theorem_b12_quality(self, seed):
        g = gnp_graph(18, 0.25, seed=seed)
        eps = 0.5
        result = congest_matching_1eps(g, eps=eps, seed=seed)
        check_matching(g, [tuple(e) for e in result.matching])
        opt = optimum_cardinality(g)
        slack = len(result.deactivated)
        assert (1 + eps) * (result.cardinality + slack) >= opt

    def test_rounds_and_stages_reported(self, small_graph):
        result = congest_matching_1eps(small_graph, eps=0.5, seed=1)
        assert result.rounds > 0
        assert result.stages >= 1


class TestBudgets:
    def test_precision_factor_grows_with_tight_eps(self):
        assert precision_round_factor(64, 0.1, 100) >= \
            precision_round_factor(64, 0.5, 100)

    def test_lemma_b11_budget_positive(self):
        assert lemma_b11_budget(3, 2, 32, 0.05) > 0


class TestNotifyWave:
    """Opt-in stage-boundary notification wave (Appendix B.3 waiting
    phase wired into the Theorem B.12 stage loop)."""

    def _graph(self, seed=1):
        return gnp_graph(20, 0.3, seed=seed)

    def test_wave_leaves_matching_untouched_but_charges_rounds(self):
        g = self._graph()
        plain = congest_matching_1eps(g, seed=3)
        waved = congest_matching_1eps(g, seed=3, notify_wave=True)
        assert waved.matching == plain.matching
        assert waved.stages == plain.stages
        assert waved.rounds > plain.rounds
        assert waved.ledger.breakdown["waiting-wave"] > 0
        assert "waiting-wave" not in plain.ledger.breakdown
        # everything except the wave accounting is identical
        other = {k: v for k, v in waved.ledger.breakdown.items()
                 if k != "waiting-wave"}
        assert other == plain.ledger.breakdown

    def test_default_off_preserves_historical_rounds(self):
        g = self._graph(seed=4)
        assert congest_matching_1eps(g, seed=0).rounds == \
            congest_matching_1eps(g, seed=0).rounds
        # extras advertise the wave only when it ran
        stream = congest_matching_1eps_stages(g, seed=0)
        _rounds, _m, extras, _state = next(stream)
        assert "notify_waves" not in extras
        stream.close()
        waved = congest_matching_1eps_stages(g, seed=0,
                                             notify_wave=True)
        _rounds, _m, extras, _state = next(waved)
        assert "notify_waves" in extras
        waved.close()

    @staticmethod
    def _drain(gen):
        last = None
        while True:
            try:
                last = next(gen)
            except StopIteration as stop:
                return last, stop.value

    @pytest.mark.parametrize("budget", [5, 20, 60])
    def test_truncate_and_resume_is_bit_identical(self, budget):
        g = self._graph(seed=7)
        _last, full = self._drain(congest_matching_1eps_stages(
            g, seed=2, notify_wave=True))
        cut_stream = congest_matching_1eps_stages(
            g, seed=2, notify_wave=True, max_rounds=budget,
            capture_state=True)
        last, cut = self._drain(cut_stream)
        if cut is not None:
            pytest.skip(f"budget {budget} did not truncate this run")
        state = last[3]
        # the payload pins the wave flag: resume without re-passing it
        assert state["options"]["notify_wave"] is True
        _last, resumed = self._drain(congest_matching_1eps_stages(
            g, seed=2, resume=state))
        assert resumed.matching == full.matching
        assert resumed.rounds == full.rounds
        assert resumed.stages == full.stages
        assert resumed.ledger.breakdown == full.ledger.breakdown

    def test_waveless_payload_keeps_historical_layout(self):
        g = self._graph(seed=9)
        stream = congest_matching_1eps_stages(g, seed=1,
                                              capture_state=True)
        _rounds, _m, _extras, state = next(stream)
        stream.close()
        assert "notify_wave" not in state["options"]
        # and a pre-wave payload resumes wave-less (back-compat)
        _last, resumed = self._drain(congest_matching_1eps_stages(
            g, seed=1, resume=state))
        plain = congest_matching_1eps(g, seed=1)
        assert resumed.matching == plain.matching
        assert resumed.rounds == plain.rounds

    def test_facade_forwards_the_option(self):
        from repro.api import random_instance, solve

        instance = random_instance("matching", n=18, p=0.3, seed=6)
        plain = solve(instance, "matching-oneeps-congest")
        waved = solve(instance, "matching-oneeps-congest",
                      notify_wave=True)
        assert waved.solution == plain.solution
        assert waved.rounds > plain.rounds
        assert waved.ledger_counts()["waiting-wave"] > 0
