"""Structured-instance coverage for the CONGEST (1+ε) machinery:
perfect-matching recovery on regular bipartite graphs and weighted
property sweeps for the bucketed pipeline."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    bipartite_matching_1eps,
    congest_matching_1eps,
    fast_matching_weighted_2eps,
)
from repro.graphs import (
    assign_edge_weights,
    bipartite_regular_graph,
    check_matching,
    cycle_graph,
    gnp_graph,
)
from repro.matching import bipartite_sides, optimum_weight


class TestPerfectMatchingRecovery:
    @pytest.mark.parametrize("seed", range(3))
    def test_regular_bipartite_has_perfect_matching(self, seed):
        """Hall's theorem: d-regular bipartite graphs have a perfect
        matching; the (1+ε) phases must recover (almost) all of it."""

        g = bipartite_regular_graph(10, 3, seed=seed)
        a, b = bipartite_sides(g)
        matching, deactivated = bipartite_matching_1eps(
            g, a, b, eps=0.5, seed=seed,
        )
        check_matching(g, [tuple(e) for e in matching])
        assert 1.5 * (len(matching) + len(deactivated)) >= 10

    def test_even_cycle_general_graph(self):
        g = cycle_graph(12)
        result = congest_matching_1eps(g, eps=0.5, seed=1)
        check_matching(g, [tuple(e) for e in result.matching])
        assert 1.5 * (result.cardinality + len(result.deactivated)) >= 6

    def test_matching_only_grows_across_stages(self):
        """Stages replace stage-local matchings with augmented ones, so
        the global matching can only grow."""

        g = gnp_graph(16, 0.25, seed=2)
        sizes = []
        for stages in (1, 2, 4):
            result = congest_matching_1eps(g, eps=0.5, seed=3,
                                           stages=stages)
            sizes.append(result.cardinality)
        assert sizes == sorted(sizes)


class TestWeightedPipelineProperty:
    @given(st.integers(min_value=0, max_value=20))
    @settings(max_examples=8, deadline=None)
    def test_weighted_2eps_property(self, seed):
        g = assign_edge_weights(gnp_graph(10, 0.4, seed=seed), 32,
                                seed=seed)
        result = fast_matching_weighted_2eps(g, eps=0.5, seed=seed)
        check_matching(g, [tuple(e) for e in result.matching])
        assert 2.5 * result.weight >= optimum_weight(g)
