"""Edge-case coverage across core algorithms: degenerate inputs,
structured extremes, and parameter boundaries."""

import networkx as nx
from repro.core import (
    LayerTrace,
    bucketed_constant_approx_mwm,
    congest_matching_1eps,
    enumerate_augmenting_paths,
    fast_matching_2eps,
    fast_matching_weighted_2eps,
    local_matching_1eps,
    matching_local_ratio,
    maxis_local_ratio_coloring,
    maxis_local_ratio_layers,
    nearly_maximal_hypergraph_matching,
    sequential_local_ratio,
    weight_group_matching,
)
from repro.graphs import (
    assign_edge_weights,
    assign_node_weights,
    complete_graph,
    cycle_graph,
    empty_graph,
    layered_graph,
    path_graph,
    star_graph,
)


class TestDegenerateGraphs:
    def test_maxis_single_edge(self):
        g = assign_node_weights(path_graph(2), 4, seed=1)
        for result in (
            maxis_local_ratio_layers(g, seed=2),
            maxis_local_ratio_coloring(g),
        ):
            assert len(result.independent_set) == 1

    def test_matching_two_nodes(self):
        g = assign_edge_weights(path_graph(2), 3, seed=1)
        assert len(matching_local_ratio(g).matching) == 1
        assert len(weight_group_matching(g).matching) == 1
        assert len(fast_matching_2eps(g).matching) == 1

    def test_all_isolated(self):
        g = assign_node_weights(empty_graph(6), 8, seed=1)
        result = maxis_local_ratio_layers(g, seed=2)
        assert result.independent_set == set(range(6))
        matching = local_matching_1eps(empty_graph(6))
        assert matching.cardinality == 0

    def test_one_eps_on_empty_graph(self):
        result = congest_matching_1eps(empty_graph(4), eps=1.0)
        assert result.cardinality == 0


class TestStructuredExtremes:
    def test_complete_graph_maxis_picks_one(self):
        g = assign_node_weights(complete_graph(8), 16, seed=2)
        result = maxis_local_ratio_layers(g, seed=3)
        assert len(result.independent_set) == 1

    def test_even_cycle_matching_near_perfect(self):
        g = cycle_graph(12)
        result = fast_matching_2eps(g, eps=0.5, seed=4)
        assert len(result.matching) >= 3  # opt=6, bound 2.5

    def test_star_matching_is_single_edge(self):
        g = assign_edge_weights(star_graph(9), 8, seed=5)
        for matching in (
            matching_local_ratio(g, seed=6).matching,
            weight_group_matching(g, seed=6).matching,
        ):
            assert len(matching) == 1

    def test_layered_chain_maxis(self):
        g = layered_graph(4, 3)
        for v, data in g.nodes(data=True):
            g.nodes[v]["weight"] = 2 ** data["layer"]
        result = maxis_local_ratio_layers(g, seed=7, trace=LayerTrace())
        # The top layer always survives entirely (no higher reducers).
        top_nodes = {v for v, d in g.nodes(data=True) if d["layer"] == 3}
        assert top_nodes <= result.independent_set

    def test_uniform_weights_reduce_to_unweighted(self):
        g = assign_node_weights(cycle_graph(9), 5, scheme="constant")
        result = maxis_local_ratio_coloring(g)
        assert 2 * len(result.independent_set) >= 4  # Δ=2 bound on C9


class TestParameterBoundaries:
    def test_eps_one_is_valid(self):
        g = nx.Graph([(0, 1), (1, 2), (2, 3)])
        result = local_matching_1eps(g, eps=1.0, seed=1)
        assert result.cardinality >= 1

    def test_tiny_weights_single_bucket(self):
        g = assign_edge_weights(cycle_graph(8), 1, scheme="constant")
        matching = bucketed_constant_approx_mwm(g, eps=0.5, seed=2)
        assert matching

    def test_huge_weight_range(self):
        g = path_graph(6)
        weights = {(0, 1): 1, (1, 2): 10**6, (2, 3): 1, (3, 4): 10**6,
                   (4, 5): 1}
        nx.set_edge_attributes(g, weights, "weight")
        result = fast_matching_weighted_2eps(g, eps=0.5, seed=3)
        assert result.weight >= 2 * 10**6 / 2.5

    def test_sequential_lr_with_negative_intermediate_weights(self):
        """Theorem 2.1 explicitly allows w1 to go negative; the
        implementation must handle simultaneous multi-candidate
        reductions driving shared neighbors far below zero."""

        g = star_graph(5)
        weights = {0: 3.0, **{i: 10.0 for i in range(1, 6)}}
        solution = sequential_local_ratio(g, weights=weights)
        assert solution == set(range(1, 6))

    def test_hypergraph_single_vertex_edges_conflict(self):
        edges = [frozenset({0}), frozenset({0}), frozenset({0})]
        result = nearly_maximal_hypergraph_matching(edges, rank=1, seed=1)
        assert len(result.matched_edges) == 1

    def test_enumerate_paths_on_clique(self):
        g = complete_graph(6)
        paths = enumerate_augmenting_paths(g, set(), 1)
        assert len(paths) == 15
