"""Tests for the fast (2+ε) matching algorithms (Thm 3.2, Appendix B.1)."""

import pytest

from repro.core import (
    bucketed_constant_approx_mwm,
    fast_matching_2eps,
    fast_matching_weighted_2eps,
    nearly_maximal_matching,
)
from repro.errors import InvalidInstance
from repro.graphs import (
    assign_edge_weights,
    check_matching,
    gnp_graph,
    random_regular_graph,
)
from repro.matching import (
    matching_weight,
    optimum_cardinality,
    optimum_weight,
)


class TestNearlyMaximalMatching:
    def test_valid_matching(self, small_graph):
        matching, unlucky, rounds = nearly_maximal_matching(
            small_graph, seed=1
        )
        check_matching(small_graph, [tuple(e) for e in matching])
        assert rounds > 0

    def test_unlucky_edges_are_isolated_from_matching(self, small_graph):
        matching, unlucky, _ = nearly_maximal_matching(small_graph, seed=2)
        matched_nodes = {v for e in matching for v in e}
        for e in unlucky:
            assert not (set(e) & matched_nodes)

    def test_empty_graph(self):
        import networkx as nx

        matching, unlucky, rounds = nearly_maximal_matching(nx.Graph())
        assert matching == set() and rounds == 0


class TestFast2EpsCardinality:
    @pytest.mark.parametrize("seed", range(4))
    def test_two_plus_eps_guarantee(self, seed):
        """Theorem 3.2 with slack: averaged over seeds the matching has
        at least OPT/(2+ε) edges (here it is usually much better)."""

        g = random_regular_graph(5, 40, seed=seed)
        eps = 0.5
        result = fast_matching_2eps(g, eps=eps, seed=seed)
        check_matching(g, [tuple(e) for e in result.matching])
        assert (2 + eps) * len(result.matching) >= optimum_cardinality(g)

    def test_rounds_ledger_populated(self, small_graph):
        result = fast_matching_2eps(small_graph, eps=0.5, seed=1)
        assert result.ledger.total == result.rounds
        assert "nmis-on-line-graph" in result.ledger.breakdown

    def test_invalid_eps(self, small_graph):
        with pytest.raises(InvalidInstance):
            fast_matching_2eps(small_graph, eps=0)


class TestBucketedConstantApprox:
    @pytest.mark.parametrize("seed", range(3))
    def test_valid_and_constant_factor(self, seed):
        g = assign_edge_weights(gnp_graph(18, 0.25, seed=seed), 64,
                                seed=seed + 1)
        matching = bucketed_constant_approx_mwm(g, eps=0.5, seed=seed)
        check_matching(g, [tuple(e) for e in matching])
        found = matching_weight(g, matching)
        # Loose empirical constant-factor check (theory: O(1)).
        assert 8 * found >= optimum_weight(g)

    def test_single_weight_class(self):
        g = assign_edge_weights(gnp_graph(12, 0.3, seed=1), 1,
                                scheme="constant", seed=2)
        matching = bucketed_constant_approx_mwm(g, eps=0.5, seed=3)
        check_matching(g, [tuple(e) for e in matching])
        assert matching

    def test_empty_graph(self):
        import networkx as nx

        assert bucketed_constant_approx_mwm(nx.Graph()) == set()


class TestFastWeighted2Eps:
    @pytest.mark.parametrize("seed", range(3))
    def test_two_plus_eps_weight_guarantee(self, seed):
        g = assign_edge_weights(gnp_graph(16, 0.3, seed=seed), 32,
                                seed=seed + 1)
        eps = 0.5
        result = fast_matching_weighted_2eps(g, eps=eps, seed=seed)
        check_matching(g, [tuple(e) for e in result.matching])
        assert (2 + eps) * result.weight >= optimum_weight(g)

    def test_bimodal_weights(self):
        """The workload where cardinality-only algorithms lose badly."""

        g = assign_edge_weights(gnp_graph(20, 0.25, seed=4), 100,
                                scheme="bimodal", seed=5)
        result = fast_matching_weighted_2eps(g, eps=0.5, seed=6)
        assert (2 + 0.5) * result.weight >= optimum_weight(g)

    def test_augmentation_never_decreases_weight(self):
        g = assign_edge_weights(gnp_graph(14, 0.3, seed=7), 16, seed=8)
        base = matching_weight(
            g, bucketed_constant_approx_mwm(g, eps=0.5, seed=9)
        )
        refined = fast_matching_weighted_2eps(g, eps=0.5, seed=9)
        assert refined.weight >= base

    def test_ledger_breakdown(self, edge_weighted_graph):
        result = fast_matching_weighted_2eps(edge_weighted_graph, eps=0.5)
        assert "bucketed-parallel-matching" in result.ledger.breakdown
        assert result.rounds == result.ledger.total

    def test_invalid_eps(self, edge_weighted_graph):
        with pytest.raises(InvalidInstance):
            fast_matching_weighted_2eps(edge_weighted_graph, eps=-1)
