"""Tests for the §B.2 nearly-maximal hypergraph matching."""

import pytest

from repro.core import (
    good_round_cap,
    lemma_b3_budget,
    nearly_maximal_hypergraph_matching,
)
from repro.errors import AlgorithmContractViolation
from repro.utils import stable_rng


def random_hypergraph(n_vertices, n_edges, rank, seed):
    rng = stable_rng(seed, "hg")
    edges = []
    for _ in range(n_edges):
        size = rng.randint(1, rank)
        edges.append(frozenset(rng.sample(range(n_vertices), size)))
    return edges


class TestBudgets:
    def test_good_round_cap_grows_with_rank(self):
        assert good_round_cap(4, 2, 0.05) > good_round_cap(2, 2, 0.05)

    def test_lemma_b3_budget_positive(self):
        assert lemma_b3_budget(3, 2, 16, 0.05) >= 1


class TestMatching:
    @pytest.mark.parametrize("seed", range(5))
    def test_matched_edges_disjoint(self, seed):
        edges = random_hypergraph(30, 40, 4, seed)
        result = nearly_maximal_hypergraph_matching(
            edges, rank=4, seed=seed
        )
        seen = set()
        for i in result.matched_edges:
            assert not (seen & edges[i])
            seen |= edges[i]

    @pytest.mark.parametrize("seed", range(5))
    def test_drained_means_no_all_active_edge(self, seed):
        """Lemma B.3's deterministic guarantee."""

        edges = random_hypergraph(25, 35, 3, seed)
        result = nearly_maximal_hypergraph_matching(
            edges, rank=3, seed=seed
        )
        assert result.drained
        removed = set(result.deactivated)
        for i in result.matched_edges:
            removed |= edges[i]
        for e in edges:
            assert e & removed, f"edge {sorted(e)} survived untouched"

    def test_deactivation_is_rare_with_mild_delta(self):
        edges = random_hypergraph(40, 50, 3, 7)
        result = nearly_maximal_hypergraph_matching(
            edges, rank=3, failure_delta=0.05, seed=8
        )
        assert len(result.deactivated) <= 4

    def test_pairwise_disjoint_edges_all_match(self):
        edges = [frozenset({i, i + 100}) for i in range(10)]
        result = nearly_maximal_hypergraph_matching(edges, rank=2, seed=1)
        assert sorted(result.matched_edges) == list(range(10))

    def test_sunflower_picks_one(self):
        """Edges all sharing a core vertex: at most one can match."""

        edges = [frozenset({0, i}) for i in range(1, 12)]
        result = nearly_maximal_hypergraph_matching(edges, rank=2, seed=2)
        assert len(result.matched_edges) == 1

    def test_rank_one_edges(self):
        edges = [frozenset({i}) for i in range(6)]
        result = nearly_maximal_hypergraph_matching(edges, rank=1, seed=3)
        assert len(result.matched_edges) == 6

    def test_rank_violation_rejected(self):
        with pytest.raises(AlgorithmContractViolation):
            nearly_maximal_hypergraph_matching(
                [frozenset({1, 2, 3})], rank=2
            )

    def test_empty_edge_rejected(self):
        with pytest.raises(AlgorithmContractViolation):
            nearly_maximal_hypergraph_matching([frozenset()], rank=2)

    def test_bad_k_rejected(self):
        with pytest.raises(AlgorithmContractViolation):
            nearly_maximal_hypergraph_matching(
                [frozenset({1})], rank=1, k=1.0
            )

    def test_no_edges(self):
        result = nearly_maximal_hypergraph_matching([], rank=3)
        assert result.matched_edges == []
        assert result.drained

    def test_deterministic_per_seed(self):
        edges = random_hypergraph(20, 25, 3, 4)
        a = nearly_maximal_hypergraph_matching(edges, rank=3, seed=5)
        b = nearly_maximal_hypergraph_matching(edges, rank=3, seed=5)
        assert a.matched_edges == b.matched_edges
