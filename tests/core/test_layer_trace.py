"""Tests for the LayerTrace instrumentation."""

from repro.core import LayerTrace


class TestLayerTrace:
    def test_record_and_series(self):
        trace = LayerTrace()
        trace.record(0, 5)
        trace.record(0, 3)
        trace.record(3, 4)
        trace.record(6, 1)
        assert trace.top_layer_series() == [5, 4, 1]

    def test_rounds_sorted_not_insertion_order(self):
        trace = LayerTrace()
        trace.record(6, 2)
        trace.record(0, 7)
        assert trace.top_layer_series() == [7, 2]

    def test_empty_series(self):
        assert LayerTrace().top_layer_series() == []
