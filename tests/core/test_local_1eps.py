"""Tests for the LOCAL-model (1+ε) matching (Theorem B.4)."""

import math

import pytest

from repro.core import (
    local_matching_1eps,
    shortest_augmenting_path_length,
    theorem_b4_round_budget,
)
from repro.errors import InvalidInstance
from repro.graphs import (
    check_matching,
    cycle_graph,
    gnp_graph,
    path_graph,
    random_regular_graph,
)
from repro.matching import optimum_cardinality


class TestQuality:
    @pytest.mark.parametrize("seed", range(4))
    def test_one_plus_eps_guarantee(self, seed):
        g = gnp_graph(24, 0.2, seed=seed)
        eps = 0.5
        result = local_matching_1eps(g, eps=eps, seed=seed)
        check_matching(g, [tuple(e) for e in result.matching])
        opt = optimum_cardinality(g)
        slack = len(result.deactivated)  # deactivated nodes are excused
        assert (1 + eps) * (result.cardinality + slack) >= opt

    def test_tighter_eps_gives_better_matching(self):
        g = random_regular_graph(4, 40, seed=3)
        opt = optimum_cardinality(g)
        coarse = local_matching_1eps(g, eps=1.0, seed=4).cardinality
        fine = local_matching_1eps(g, eps=0.34, seed=4).cardinality
        assert fine >= coarse
        assert (1 + 0.34) * fine + 2 >= opt  # small additive slack

    def test_path_graph_near_perfect(self):
        g = path_graph(21)
        result = local_matching_1eps(g, eps=0.34, seed=5)
        assert result.cardinality >= 9  # opt = 10

    def test_odd_cycle(self):
        g = cycle_graph(9)
        result = local_matching_1eps(g, eps=0.5, seed=6)
        assert result.cardinality >= 3  # opt = 4


class TestHKInvariant:
    @pytest.mark.parametrize("seed", range(3))
    def test_no_short_augmenting_path_among_active(self, seed):
        """After the loop, no augmenting path of length ≤ 2⌈1/ε⌉+1 may
        survive among non-deactivated nodes (Theorem B.4's argument)."""

        g = gnp_graph(20, 0.25, seed=seed)
        eps = 0.5
        result = local_matching_1eps(g, eps=eps, seed=seed)
        active = set(g.nodes) - result.deactivated
        max_length = 2 * math.ceil(1 / eps) + 1
        remaining = shortest_augmenting_path_length(
            g, result.matching, active=active, max_length=max_length
        )
        assert remaining is None

    def test_initial_matching_respected(self):
        g = path_graph(6)
        initial = {frozenset((2, 3))}
        result = local_matching_1eps(g, eps=0.5, seed=7,
                                     initial_matching=initial)
        check_matching(g, [tuple(e) for e in result.matching])
        assert result.cardinality >= 2


class TestAccounting:
    def test_ledger_phases_charged(self, small_graph):
        result = local_matching_1eps(small_graph, eps=0.5, seed=1)
        assert result.rounds == result.ledger.total
        assert any(label.startswith("nmm-phase")
                   for label in result.ledger.breakdown)

    def test_analytic_budget_positive_and_monotone(self):
        assert theorem_b4_round_budget(64, 0.5) > 0
        assert theorem_b4_round_budget(64, 0.25) > theorem_b4_round_budget(
            64, 0.5
        )

    def test_invalid_eps(self, small_graph):
        with pytest.raises(InvalidInstance):
            local_matching_1eps(small_graph, eps=0)
