"""Tests for Algorithm 1 — the sequential local-ratio meta-algorithm.

These assert the Lemma 2.2 / Theorem 2.1 invariants on concrete random
executions, plus the end-to-end Δ-approximation guarantee against the
exact MWIS oracle.
"""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidInstance
from repro.graphs import (
    assign_node_weights,
    check_independent_set,
    gnp_graph,
    max_degree,
    node_weight,
    star_graph,
)
from repro.core import (
    exchange_step,
    local_ratio_bound,
    random_mis_selector,
    sequential_local_ratio,
    split_weights,
)
from repro.mis import exact_mwis, mwis_weight


class TestSplitWeights:
    def test_weight_vector_splits_exactly(self):
        """Theorem 2.1's premise: w = w1 + w2."""

        g = assign_node_weights(gnp_graph(15, 0.25, seed=1), 16, seed=2)
        weights = {v: float(node_weight(g, v)) for v in g.nodes}
        chosen = {next(iter(g.nodes))}
        reduced, residual = split_weights(g, weights, chosen)
        for v in g.nodes:
            assert reduced[v] + residual[v] == pytest.approx(weights[v])

    def test_chosen_nodes_fully_consumed(self):
        """Lemma 2.2's premise: w2[u] = w[u], hence w1[u] = 0, u ∈ U."""

        g = assign_node_weights(gnp_graph(15, 0.25, seed=1), 16, seed=2)
        weights = {v: float(node_weight(g, v)) for v in g.nodes}
        selector = random_mis_selector(3)
        chosen = selector(g, weights)
        reduced, residual = split_weights(g, weights, chosen)
        for u in chosen:
            assert residual[u] == pytest.approx(weights[u])
            assert reduced[u] == pytest.approx(0.0)

    def test_residual_is_closed_neighborhood_sum(self):
        g = star_graph(4)
        weights = {v: 10.0 for v in g.nodes}
        reduced, residual = split_weights(g, weights, {1, 2})
        assert residual[0] == 20.0  # hub neighbors both chosen leaves
        assert residual[1] == 10.0
        assert residual[3] == 0.0

    def test_rejects_dependent_set(self):
        g = star_graph(3)
        weights = {v: 1.0 for v in g.nodes}
        with pytest.raises(Exception):
            split_weights(g, weights, {0, 1})


class TestExchangeStep:
    def test_adds_uncovered_nodes(self):
        g = star_graph(3)
        assert exchange_step(g, {0}, set()) == {0}

    def test_skips_covered_nodes(self):
        g = star_graph(3)
        # Hub 0 is in U; leaf 1 is already in the solution.
        assert exchange_step(g, {0}, {1}) == {1}

    def test_coverage_invariant(self):
        """After the exchange, every u ∈ U is in x' or has a neighbor
        in x' — the inequality at the heart of Lemma 2.2."""

        g = gnp_graph(20, 0.2, seed=4)
        selector = random_mis_selector(5)
        chosen = selector(g, {v: 1.0 for v in g.nodes})
        solution = exchange_step(g, chosen, set())
        for u in chosen:
            covered = u in solution or any(
                v in solution for v in g.neighbors(u)
            )
            assert covered


class TestSequentialLocalRatio:
    def test_returns_independent_set(self, weighted_graph):
        solution = sequential_local_ratio(weighted_graph)
        check_independent_set(weighted_graph, solution)

    @pytest.mark.parametrize("seed", range(5))
    def test_delta_approximation(self, seed):
        g = assign_node_weights(gnp_graph(14, 0.3, seed=seed), 16,
                                seed=seed + 1)
        solution = sequential_local_ratio(
            g, selector=random_mis_selector(seed)
        )
        found = mwis_weight(g, solution)
        optimum = mwis_weight(g, exact_mwis(g))
        delta = max(1, max_degree(g))
        assert delta * found >= optimum

    def test_star_trap_is_handled(self):
        """The §1.1 counterexample: naive simultaneous reductions would
        end with nothing selected; the meta-algorithm still returns a
        Δ-approximate (here: non-empty, covering) solution."""

        g = assign_node_weights(star_graph(6), 40, scheme="star-trap")
        solution = sequential_local_ratio(g)
        assert solution  # something was chosen
        found = mwis_weight(g, solution)
        optimum = mwis_weight(g, exact_mwis(g))
        assert max_degree(g) * found >= optimum

    def test_unweighted_defaults_to_one(self, small_graph):
        solution = sequential_local_ratio(small_graph)
        check_independent_set(small_graph, solution)
        assert len(solution) >= 1

    def test_trace_records_lemma_2_2_invariants(self):
        g = assign_node_weights(gnp_graph(12, 0.3, seed=6), 8, seed=7)
        trace = []
        sequential_local_ratio(g, selector=random_mis_selector(8),
                               trace=trace)
        assert trace
        for record in trace:
            weights = record["weights"]
            reduced = record["reduced"]
            residual = record["residual"]
            for v in record["reduced"]:
                assert reduced[v] + residual[v] == pytest.approx(weights[v])
            for u in record["set"]:
                assert reduced[u] == pytest.approx(0.0)

    def test_missing_weights_rejected(self):
        g = gnp_graph(5, 0.5, seed=0)
        with pytest.raises(InvalidInstance):
            sequential_local_ratio(g, weights={0: 1.0})

    def test_empty_graph(self):
        assert sequential_local_ratio(nx.Graph()) == set()

    @given(st.integers(min_value=0, max_value=25))
    @settings(max_examples=10, deadline=None)
    def test_property_delta_approx(self, seed):
        g = assign_node_weights(gnp_graph(10, 0.35, seed=seed), 8,
                                seed=seed)
        solution = sequential_local_ratio(
            g, selector=random_mis_selector(seed + 50)
        )
        check_independent_set(g, solution)
        delta = max(1, max_degree(g))
        assert delta * mwis_weight(g, solution) >= mwis_weight(
            g, exact_mwis(g)
        )


class TestLocalRatioBound:
    def test_uses_graph_degree(self):
        assert local_ratio_bound(star_graph(5)) == 5

    def test_explicit_delta(self):
        assert local_ratio_bound(nx.Graph(), delta=2) == 2
