"""Tests for the 2-approximate MWM via MaxIS on the line graph (§2.4)."""

import networkx as nx
import pytest

from repro.congest import CongestionAudit
from repro.core import matching_lines_phases, matching_local_ratio
from repro.errors import InvalidInstance
from repro.graphs import (
    assign_edge_weights,
    check_matching,
    cycle_graph,
    gnp_graph,
    path_graph,
    star_graph,
)
from repro.matching import optimum_weight


class TestTwoApproximation:
    @pytest.mark.parametrize("method", ["layers", "coloring"])
    @pytest.mark.parametrize("seed", range(3))
    def test_weight_at_least_half_optimum(self, method, seed):
        """Theorem 2.10: on L(G) the local-ratio factor is 2."""

        g = assign_edge_weights(gnp_graph(16, 0.25, seed=seed), 16,
                                seed=seed + 1)
        result = matching_local_ratio(g, method=method, seed=seed + 2)
        check_matching(g, [tuple(e) for e in result.matching])
        assert 2 * result.weight >= optimum_weight(g)

    @pytest.mark.parametrize("method", ["layers", "coloring"])
    def test_structured_graphs(self, method):
        for g in (path_graph(9), cycle_graph(10), star_graph(7)):
            assign_edge_weights(g, 8, seed=3)
            result = matching_local_ratio(g, method=method, seed=4)
            check_matching(g, [tuple(e) for e in result.matching])
            assert 2 * result.weight >= optimum_weight(g)

    def test_bimodal_weights_pick_heavy_edges(self):
        """Weight-oblivious matching fails here; local ratio must not."""

        g = assign_edge_weights(gnp_graph(20, 0.25, seed=5), 100,
                                scheme="bimodal", seed=6)
        result = matching_local_ratio(g, method="layers", seed=7)
        assert 2 * result.weight >= optimum_weight(g)

    def test_unweighted_half_optimum(self, small_graph):
        # Local ratio does not promise maximality (see the MaxIS
        # non-maximality tests); the factor-2 bound is the guarantee.
        from repro.matching import optimum_cardinality

        result = matching_local_ratio(small_graph, method="coloring")
        check_matching(small_graph, [tuple(e) for e in result.matching])
        assert 2 * len(result.matching) >= optimum_cardinality(small_graph)

    def test_empty_graph(self):
        g = nx.Graph()
        g.add_nodes_from(range(3))
        result = matching_local_ratio(g)
        assert result.matching == set()
        assert result.rounds == 0

    def test_unknown_method_rejected(self, small_graph):
        with pytest.raises(InvalidInstance):
            matching_local_ratio(small_graph, method="bogus")

    def test_deterministic_coloring_method(self, edge_weighted_graph):
        a = matching_local_ratio(edge_weighted_graph, method="coloring")
        b = matching_local_ratio(edge_weighted_graph, method="coloring")
        assert a.matching == b.matching

    @pytest.mark.parametrize("method", ["layers", "coloring"])
    def test_zero_budget_truncates_not_unbounded(self, edge_weighted_graph,
                                                 method):
        # max_rounds=0 is an explicit (exhausted) budget, not "use the
        # default cap": the phase generator must stop at the initial
        # state and report truncation (return None), simulating nothing.
        gen = matching_lines_phases(edge_weighted_graph, method=method,
                                    seed=2, max_rounds=0)
        snapshots = []
        while True:
            try:
                snapshots.append(next(gen))
            except StopIteration as stop:
                assert stop.value is None
                break
        assert all(snapshot[0] == 0 for snapshot in snapshots)


class TestCongestionClaim:
    def test_audit_shows_theorem_2_8_separation(self):
        """Naive line-graph simulation congests with Δ; the aggregation
        mechanism stays at 2 messages per physical edge per round."""

        g = assign_edge_weights(star_graph(10), 8, seed=1)
        audit = CongestionAudit()
        matching_local_ratio(g, method="layers", seed=2, audit=audit)
        assert audit.max_naive_load() > audit.max_aggregated_load()
        assert audit.max_aggregated_load() == 2
