"""Tests for Algorithm 3 — coloring-based deterministic MaxIS."""

import pytest

from repro.core import maxis_local_ratio_coloring
from repro.graphs import (
    assign_node_weights,
    check_independent_set,
    cycle_graph,
    gnp_graph,
    max_degree,
    path_graph,
    star_graph,
)
from repro.mis import exact_mwis, mwis_weight
from repro.mis.coloring import delta_plus_one_coloring


class TestCorrectness:
    def test_independent_output(self, weighted_graph):
        result = maxis_local_ratio_coloring(weighted_graph)
        check_independent_set(weighted_graph, result.independent_set)

    def test_output_need_not_be_maximal(self):
        """The known non-maximality instance (see test_maxis_layers):
        node 3's weight is consumed by candidate 4, which is knocked
        out by 5 — the Δ-approximation still holds."""

        g = assign_node_weights(gnp_graph(6, 0.3, seed=82), 6,
                                scheme="uniform", seed=82)
        result = maxis_local_ratio_coloring(g)
        assert 3 not in result.independent_set
        assert not any(u in result.independent_set
                       for u in g.neighbors(3))
        optimum = mwis_weight(g, exact_mwis(g))
        assert max_degree(g) * result.weight >= optimum

    @pytest.mark.parametrize("seed", range(5))
    def test_delta_approximation(self, seed):
        g = assign_node_weights(gnp_graph(14, 0.3, seed=seed), 32,
                                seed=seed + 1)
        result = maxis_local_ratio_coloring(g)
        optimum = mwis_weight(g, exact_mwis(g))
        delta = max(1, max_degree(g))
        assert delta * result.weight >= optimum

    def test_fully_deterministic(self, weighted_graph):
        a = maxis_local_ratio_coloring(weighted_graph)
        b = maxis_local_ratio_coloring(weighted_graph)
        assert a.independent_set == b.independent_set
        assert a.local_ratio_rounds == b.local_ratio_rounds

    def test_star_trap(self):
        g = assign_node_weights(star_graph(6), 40, scheme="star-trap")
        result = maxis_local_ratio_coloring(g)
        assert result.independent_set
        optimum = mwis_weight(g, exact_mwis(g))
        assert max_degree(g) * result.weight >= optimum

    def test_path_optimal_unweighted(self):
        g = path_graph(7)
        result = maxis_local_ratio_coloring(g)
        # Δ = 2 so the guarantee is a 2-approx; on a path the local
        # ratio pick is usually optimal or near it.
        assert 2 * len(result.independent_set) >= 4

    def test_reuses_supplied_coloring(self, weighted_graph):
        coloring = delta_plus_one_coloring(weighted_graph)
        result = maxis_local_ratio_coloring(weighted_graph,
                                            coloring=coloring)
        assert result.coloring is coloring


class TestRounds:
    def test_local_ratio_rounds_scale_with_palette(self):
        """Removal needs at most one sweep per color class (O(Δ))."""

        g = assign_node_weights(cycle_graph(40), 16, seed=1)  # Δ = 2
        result = maxis_local_ratio_coloring(g)
        # palette = 3; the cascade is short on a cycle.
        assert result.local_ratio_rounds <= 8 * (result.coloring.palette + 2)

    def test_accounting_properties(self, weighted_graph):
        result = maxis_local_ratio_coloring(weighted_graph)
        assert result.measured_rounds >= result.local_ratio_rounds
        assert result.accounted_rounds >= result.local_ratio_rounds
        delta = max_degree(weighted_graph)
        assert result.coloring.accounted_bek14_rounds >= delta
