"""Tests for Algorithm 2 — layered distributed MaxIS."""

import pytest

from repro.congest import SynchronousNetwork
from repro.core import LayerTrace, maxis_local_ratio_layers
from repro.errors import InvalidInstance
from repro.graphs import (
    assign_node_weights,
    check_independent_set,
    empty_graph,
    gnp_graph,
    max_degree,
    star_graph,
)
from repro.mis import exact_mwis, mwis_weight


class TestCorrectness:
    def test_independent_output(self, weighted_graph):
        result = maxis_local_ratio_layers(weighted_graph, seed=1)
        check_independent_set(weighted_graph, result.independent_set)

    @pytest.mark.parametrize("seed", range(5))
    def test_delta_approximation(self, seed):
        g = assign_node_weights(gnp_graph(14, 0.3, seed=seed), 32,
                                seed=seed + 1)
        result = maxis_local_ratio_layers(g, seed=seed + 2)
        optimum = mwis_weight(g, exact_mwis(g))
        delta = max(1, max_degree(g))
        assert delta * result.weight >= optimum

    def test_star_trap(self):
        """§1.1: the adversarial star must not end with an empty set."""

        g = assign_node_weights(star_graph(6), 40, scheme="star-trap")
        result = maxis_local_ratio_layers(g, seed=3)
        assert result.independent_set
        optimum = mwis_weight(g, exact_mwis(g))
        assert max_degree(g) * result.weight >= optimum

    def test_unweighted_graph(self, small_graph):
        result = maxis_local_ratio_layers(small_graph, seed=4)
        check_independent_set(small_graph, result.independent_set)
        assert result.weight == len(result.independent_set)

    def test_every_node_gets_an_output(self, weighted_graph):
        result = maxis_local_ratio_layers(weighted_graph, seed=5)
        # Solution quality aside, the protocol must decide every node:
        # the independent set is exactly the InIS nodes and the rest
        # halted NotInIS (checked implicitly by termination).
        assert result.rounds > 0

    def test_output_need_not_be_maximal(self):
        """Local ratio guarantees Δ-approximation, NOT maximality: a
        node whose weight is consumed by candidates that later get
        knocked out can end uncovered.  This instance (found by
        hypothesis) realizes that for the meta-algorithm and both
        distributed implementations — the Δ bound still holds."""

        g = assign_node_weights(gnp_graph(6, 0.3, seed=82), 6,
                                scheme="uniform", seed=82)
        result = maxis_local_ratio_layers(g, seed=0)
        check_independent_set(g, result.independent_set)
        optimum = mwis_weight(g, exact_mwis(g))
        assert max_degree(g) * result.weight >= optimum

    def test_isolated_nodes_all_join(self):
        g = assign_node_weights(empty_graph(5), 9, seed=1)
        result = maxis_local_ratio_layers(g, seed=7)
        assert result.independent_set == set(range(5))

    def test_single_node(self):
        g = assign_node_weights(empty_graph(1), 3, seed=0)
        result = maxis_local_ratio_layers(g)
        assert result.independent_set == {0}

    def test_rejects_non_positive_weights(self):
        import networkx as nx

        g = nx.Graph()
        g.add_node(0, weight=0)
        with pytest.raises(InvalidInstance):
            maxis_local_ratio_layers(g)

    def test_deterministic_per_seed(self, weighted_graph):
        a = maxis_local_ratio_layers(weighted_graph, seed=11)
        b = maxis_local_ratio_layers(weighted_graph, seed=11)
        assert a.independent_set == b.independent_set


class TestRounds:
    def test_rounds_grow_with_log_w(self):
        """Theorem 2.3: rounds scale with log W at fixed topology.

        The log-uniform scheme occupies every layer equally, which is
        the workload that exposes the log W factor."""

        g_small = assign_node_weights(gnp_graph(40, 0.1, seed=1), 2,
                                      scheme="log-uniform", seed=2)
        g_large = assign_node_weights(gnp_graph(40, 0.1, seed=1), 4096,
                                      scheme="log-uniform", seed=2)
        rounds_small = []
        rounds_large = []
        for seed in range(4):
            rounds_small.append(
                maxis_local_ratio_layers(g_small, seed=seed).rounds
            )
            rounds_large.append(
                maxis_local_ratio_layers(g_large, seed=seed).rounds
            )
        assert sum(rounds_large) > sum(rounds_small)

    def test_metrics_accumulate_on_shared_network(self, weighted_graph):
        net = SynchronousNetwork(weighted_graph, seed=9)
        maxis_local_ratio_layers(weighted_graph, network=net)
        assert net.metrics.rounds > 0
        assert net.metrics.messages > 0

    def test_layer_trace_topmost_is_nonincreasing_overall(self):
        g = assign_node_weights(gnp_graph(30, 0.15, seed=3), 256,
                                scheme="geometric", seed=4)
        trace = LayerTrace()
        maxis_local_ratio_layers(g, seed=10, trace=trace)
        series = trace.top_layer_series()
        assert series, "trace should record layer occupancy"
        # Lemma A.1: the top layer can only move down over time.
        assert all(b <= a for a, b in zip(series, series[1:]))
