"""Tests for the Theorem 3.1 improved nearly-maximal IS."""

import pytest

from repro.core import (
    improved_nearly_maximal_is,
    paper_k,
    residual_decay_series,
    theorem_3_1_budget,
)
from repro.graphs import check_independent_set, random_regular_graph


class TestParameters:
    def test_paper_k_floors_at_two(self):
        assert paper_k(4) == 2.0
        assert paper_k(1) == 2.0

    def test_paper_k_formula_kicks_in_for_huge_delta(self):
        huge = 2 ** 4000  # log Δ = 4000, log^0.1 Δ ≈ 2.29
        assert paper_k(huge) > 2.0

    def test_budget_monotone_in_delta(self):
        assert theorem_3_1_budget(1024, 2, 0.05) >= theorem_3_1_budget(
            16, 2, 0.05
        )

    def test_budget_grows_when_failure_shrinks(self):
        assert theorem_3_1_budget(64, 2, 0.001) > theorem_3_1_budget(
            64, 2, 0.2
        )

    def test_budget_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            theorem_3_1_budget(64, 2, 1.5)

    def test_budget_log_over_logk_term(self):
        """Larger K shrinks the log Δ / log K term (the improvement)."""

        d = 2 ** 1000  # log Δ = 1000 so the log term dominates
        small_k = theorem_3_1_budget(d, 2, 0.5)
        big_k = theorem_3_1_budget(d, 8, 0.5)
        assert big_k < small_k


class TestAlgorithm:
    def test_independence(self, small_graph):
        result = improved_nearly_maximal_is(small_graph, seed=1)
        check_independent_set(small_graph, result.independent_set)

    def test_residual_fraction_small(self):
        """Theorem 3.1: per-node failure ≤ δ; empirically the residual
        fraction over seeds must be well below a loose 2δ."""

        g = random_regular_graph(6, 80, seed=2)
        total_nodes = 0
        total_residual = 0
        for seed in range(6):
            result = improved_nearly_maximal_is(
                g, failure_delta=0.05, seed=seed
            )
            total_nodes += g.number_of_nodes()
            total_residual += len(result.residual)
        assert total_residual / total_nodes <= 0.1

    def test_stats_collection(self, small_graph):
        result = improved_nearly_maximal_is(small_graph, seed=3,
                                            collect_stats=True)
        assert result.stats is not None

    def test_decay_series_is_roughly_decreasing(self):
        g = random_regular_graph(4, 40, seed=4)
        series = residual_decay_series(g, k=2, max_iterations=12,
                                       seeds=range(3))
        assert series[0] >= series[-1]
        assert series[-1] <= 0.2

    def test_explicit_k_respected(self, small_graph):
        result = improved_nearly_maximal_is(small_graph, k=3, seed=5)
        assert result.k == 3
