"""Tests for the Appendix B.4 proposal matching."""

import pytest

from repro.core import (
    bipartite_proposal_matching,
    general_proposal_matching,
    lemma_b13_rounds,
    optimal_k,
)
from repro.errors import InvalidInstance
from repro.graphs import (
    bipartite_regular_graph,
    check_matching,
    gnp_graph,
    random_bipartite_graph,
)
from repro.matching import bipartite_sides, optimum_cardinality


class TestBudget:
    def test_rounds_formula(self):
        assert lemma_b13_rounds(64, 0.25, 4) > 0

    def test_rejects_small_k(self):
        with pytest.raises(InvalidInstance):
            lemma_b13_rounds(64, 0.25, 1)

    def test_optimal_k_at_least_two(self):
        assert optimal_k(2, 0.25) >= 2
        assert optimal_k(10**6, 0.25) >= 2

    def test_optimizing_helps_for_large_delta(self):
        """The optimized K beats K=2 on the Lemma B.13 bound."""

        delta, eps = 10**5, 0.25
        k = optimal_k(delta, eps)
        assert lemma_b13_rounds(delta, eps, k) <= lemma_b13_rounds(
            delta, eps, 2
        )


class TestBipartite:
    @pytest.mark.parametrize("seed", range(4))
    def test_valid_matching(self, seed):
        g = random_bipartite_graph(12, 12, 0.25, seed=seed)
        left, right = bipartite_sides(g)
        result = bipartite_proposal_matching(g, left, right, eps=0.25,
                                             seed=seed)
        check_matching(g, [tuple(e) for e in result.matching])

    def test_unlucky_fraction_small(self):
        """Lemma B.13: each left node unlucky w.p. ≤ ε/2."""

        eps = 0.25
        unlucky_total = 0
        left_total = 0
        for seed in range(5):
            g = bipartite_regular_graph(20, 4, seed=seed)
            left, right = bipartite_sides(g)
            result = bipartite_proposal_matching(g, left, right, eps=eps,
                                                 seed=seed)
            unlucky_total += len(result.unlucky & left)
            left_total += len(left)
        assert unlucky_total / left_total <= eps

    def test_unlucky_nodes_are_unmatched_non_isolated(self):
        g = random_bipartite_graph(10, 4, 0.5, seed=3)
        left, right = bipartite_sides(g)
        result = bipartite_proposal_matching(g, left, right, eps=0.5,
                                             seed=3, phases=1)
        matched = {v for e in result.matching for v in e}
        for v in result.unlucky:
            assert v not in matched
            assert g.degree(v) > 0

    def test_crossing_edges_enforced(self):
        import networkx as nx

        g = nx.Graph()
        g.add_edge(0, 1)
        with pytest.raises(InvalidInstance):
            bipartite_proposal_matching(g, {0, 1}, set(), seed=0)

    def test_rounds_bounded_by_phases(self):
        g = random_bipartite_graph(15, 15, 0.2, seed=4)
        left, right = bipartite_sides(g)
        result = bipartite_proposal_matching(g, left, right, phases=5,
                                             seed=4)
        assert result.rounds <= 2 * 5 + 4


class TestGeneral:
    @pytest.mark.parametrize("seed", range(4))
    def test_valid_matching(self, seed):
        g = gnp_graph(24, 0.2, seed=seed)
        matching, rounds, ledger = general_proposal_matching(
            g, eps=0.25, seed=seed
        )
        check_matching(g, [tuple(e) for e in matching])
        assert rounds == ledger.total

    def test_two_plus_eps_on_average(self):
        """Lemma B.14: (2+ε)-approximation (checked with seed slack)."""

        eps = 0.5
        good = 0
        for seed in range(5):
            g = gnp_graph(26, 0.2, seed=seed)
            matching, _, _ = general_proposal_matching(g, eps=eps,
                                                       seed=seed)
            if (2 + eps) * len(matching) >= optimum_cardinality(g):
                good += 1
        assert good >= 4

    def test_repetitions_improve_coverage(self):
        g = gnp_graph(24, 0.25, seed=6)
        few, _, _ = general_proposal_matching(g, eps=0.5, seed=6,
                                              repetitions=1)
        many, _, _ = general_proposal_matching(g, eps=0.5, seed=6,
                                               repetitions=6)
        assert len(many) >= len(few)
