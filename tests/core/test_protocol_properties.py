"""Protocol-level hypothesis tests for the distributed MaxIS programs.

These hammer Algorithm 2 and Algorithm 3 with randomized topologies,
weights, and seeds, asserting the structural invariants the protocols
must never violate regardless of scheduling: independence, maximality
(the stack discipline's coverage), the Δ bound against the exact
oracle, and agreement between engines on the guarantee.
"""

from hypothesis import given, settings, strategies as st

from repro.core import (
    maxis_local_ratio_coloring,
    maxis_local_ratio_layers,
    sequential_local_ratio,
)
from repro.graphs import (
    assign_node_weights,
    check_independent_set,
    gnp_graph,
    max_degree,
)
from repro.mis import exact_mwis, mwis_weight

graph_params = st.tuples(
    st.integers(min_value=2, max_value=14),      # nodes
    st.integers(min_value=0, max_value=100),     # topology seed
    st.integers(min_value=1, max_value=64),      # max weight
    st.sampled_from(["uniform", "geometric", "log-uniform", "degree"]),
    st.integers(min_value=0, max_value=10),      # algorithm seed
)


@given(graph_params)
@settings(max_examples=25, deadline=None)
def test_algorithm_2_invariants(params):
    """Independence and the Δ bound always hold.  Maximality does NOT
    (a node whose weight is consumed by later-knocked-out candidates
    can end uncovered) — see test_maxis_layers for the witness."""

    n, topo_seed, w, scheme, algo_seed = params
    g = assign_node_weights(gnp_graph(n, 0.3, seed=topo_seed), w,
                            scheme=scheme, seed=topo_seed)
    result = maxis_local_ratio_layers(g, seed=algo_seed)
    check_independent_set(g, result.independent_set)
    optimum = mwis_weight(g, exact_mwis(g))
    delta = max(1, max_degree(g))
    assert delta * result.weight >= optimum


@given(graph_params)
@settings(max_examples=25, deadline=None)
def test_algorithm_3_invariants(params):
    n, topo_seed, w, scheme, _ = params
    g = assign_node_weights(gnp_graph(n, 0.3, seed=topo_seed), w,
                            scheme=scheme, seed=topo_seed)
    result = maxis_local_ratio_coloring(g)
    check_independent_set(g, result.independent_set)
    optimum = mwis_weight(g, exact_mwis(g))
    delta = max(1, max_degree(g))
    assert delta * result.weight >= optimum


@given(graph_params)
@settings(max_examples=20, deadline=None)
def test_engines_agree_on_the_guarantee(params):
    """All three formulations (sequential, layered, coloring) satisfy
    the same Δ bound on the same instance."""

    n, topo_seed, w, scheme, algo_seed = params
    g = assign_node_weights(gnp_graph(n, 0.3, seed=topo_seed), w,
                            scheme=scheme, seed=topo_seed)
    optimum = mwis_weight(g, exact_mwis(g))
    delta = max(1, max_degree(g))
    for found in (
        mwis_weight(g, sequential_local_ratio(g)),
        maxis_local_ratio_layers(g, seed=algo_seed).weight,
        maxis_local_ratio_coloring(g).weight,
    ):
        assert delta * found >= optimum
