"""Theorem 2.9 — Algorithm 2 is a local aggregation algorithm.

The defining property (Definitions 2.4–2.7): a node's behaviour depends
on its inbox only through order-invariant aggregate functions.  We check
this mechanically: feeding the same messages in different orders to a
program replica must produce identical state and identical outgoing
messages.  This is what licenses the Theorem 2.8 line-graph simulation.
"""

import itertools

from repro.congest import NodeContext
from repro.core.maxis_layers import MaxISLayersProgram
from repro.mis.ghaffari import GhaffariProgram
from repro.utils import stable_rng


class ScriptedContext(NodeContext):
    """A NodeContext with a manually controlled inbox and round."""

    def __init__(self, node, neighbors, seed, round_index, inbox):
        super().__init__(node=node, neighbors=tuple(neighbors),
                         rng=stable_rng(seed, node), n=16, max_degree=4)
        self.round = round_index
        self.inbox = dict(inbox)


def snapshots_equal(a, b, fields):
    return all(getattr(a, f) == getattr(b, f) for f in fields)


def run_replica(program_factory, rounds, fields):
    """Run a program over scripted rounds for every inbox permutation;
    assert state and outbox agree across permutations."""

    reference = None
    inbox_items = list(rounds[-1][1].items())
    for permutation in itertools.permutations(inbox_items):
        program = program_factory()
        ctx = None
        for round_index, inbox in rounds[:-1]:
            ctx = ScriptedContext("v", ["u1", "u2", "u3"], 1, round_index,
                                  inbox)
            if round_index == 0 and ctx.round == 0:
                program.on_start(ctx)
            program.on_round(ctx)
            ctx.drain_outbox()
        final_round_index = rounds[-1][0]
        ctx = ScriptedContext("v", ["u1", "u2", "u3"], 1,
                              final_round_index, dict(permutation))
        program.on_round(ctx)
        outbox = ctx.drain_outbox()
        snapshot = tuple(getattr(program, f, None) for f in fields)
        if reference is None:
            reference = (snapshot, outbox, ctx.halted, ctx.output)
        else:
            assert reference == (snapshot, outbox, ctx.halted,
                                 ctx.output), (
                f"order-dependent behaviour on permutation {permutation}"
            )


class TestAlgorithm2OrderInvariance:
    def test_phase_a_reduce_processing(self):
        """Multiple simultaneous reduces must commute (SUM aggregate)."""

        def factory():
            program = MaxISLayersProgram(weight=20)
            ctx = ScriptedContext("v", ["u1", "u2", "u3"], 1, -1, {})
            program.on_start(ctx)
            return program

        inbox = {
            "u1": ("reduce", 4),
            "u2": ("reduce", 3),
            "u3": ("removed",),
        }
        run_replica(lambda: factory(), [(0, inbox)],
                    fields=("weight", "status", "active_neighbors"))

    def test_phase_b_eligibility(self):
        """Layer comparisons are a MAX aggregate: permuting the info
        messages cannot change eligibility or the bid."""

        def factory():
            program = MaxISLayersProgram(weight=20)
            ctx = ScriptedContext("v", ["u1", "u2", "u3"], 1, -1, {})
            program.on_start(ctx)
            return program

        rounds = [
            (0, {}),
            (1, {
                "u1": ("info", 3, 2),
                "u2": ("info", 30, 5),
                "u3": ("info", 7, 3),
            }),
        ]
        run_replica(lambda: factory(), rounds,
                    fields=("eligible", "bid", "neighbor_layers"))

    def test_phase_c_bid_resolution(self):
        """Winning = beating the MAX of same-layer bids; permutation
        invariant."""

        def factory():
            program = MaxISLayersProgram(weight=20)
            ctx = ScriptedContext("v", ["u1", "u2", "u3"], 1, -1, {})
            program.on_start(ctx)
            return program

        rounds = [
            (0, {}),
            (1, {
                "u1": ("info", 18, 5),
                "u2": ("info", 20, 5),
                "u3": ("info", 2, 1),
            }),
            (2, {
                "u1": ("bid", 7),
                "u2": ("bid", 12),
            }),
        ]
        run_replica(lambda: factory(), rounds,
                    fields=("status", "weight", "wait_set"))


class TestGhaffariOrderInvariance:
    def test_effective_degree_is_a_sum(self):
        def factory():
            program = GhaffariProgram(k=2, iterations=10)
            ctx = ScriptedContext("v", ["u1", "u2", "u3"], 1, -1, {})
            program.on_start(ctx)
            return program

        rounds = [
            (0, {}),
            (1, {
                "u1": ("p", 1, False, True),
                "u2": ("p", 2, True, False),
                "u3": ("p", 1, False, False),
            }),
        ]
        run_replica(lambda: factory(), rounds,
                    fields=("exponent", "marked", "low_degree"))
