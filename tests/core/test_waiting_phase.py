"""The (1+ε) matcher's waiting phase on ``NodeContext.sleep()``.

Appendix B.3's matched nodes are pure waiters between traversal
iterations: they act only when a probe from a free node reaches them.
:func:`repro.core.waiting_phase_wave` runs that phase as a real
message-passing program with the waiters parked on the simulator's
wake list; these tests pin the port's contract on a state produced by
the actual (1+ε) CONGEST matcher:

* sleeping waiters and their busy-wait twins agree on every output
  and on the round count (scheduling changes the work, never the
  semantics);
* the parked run steps only the nodes the wave actually touches —
  the wake-list savings the scheduler was built for.
"""

from repro.core import congest_matching_1eps, waiting_phase_wave
from repro.graphs import path_graph

EPS = 0.5
SEED = 2


def matcher_state(n=120):
    """A near-maximal matching from the real (1+ε) CONGEST matcher on a
    long path: almost every node ends up matched (a waiter), free
    nodes are a tiny fringe — the waiting phase's typical shape."""

    graph = path_graph(n)
    result = congest_matching_1eps(graph, eps=EPS, seed=SEED)
    return graph, result.matching


class TestWaitingPhaseWave:
    def test_matcher_leaves_mostly_waiters(self):
        graph, matching = matcher_state()
        matched = {v for e in matching for v in e}
        free = set(graph.nodes) - matched
        assert len(free) <= len(graph.nodes) // 4, (
            "workload is not laggard-heavy; the scheduling pin below "
            "would be meaningless"
        )
        assert free, "need at least one free node to start the wave"

    def test_sleeping_matches_polling_bit_for_bit(self):
        graph, matching = matcher_state()
        d = 2 * round(1.0 / EPS) + 1
        parked = waiting_phase_wave(graph, matching, d, seed=3, park=True)
        polling = waiting_phase_wave(graph, matching, d, seed=3,
                                     park=False)
        assert parked.outputs == polling.outputs
        assert parked.rounds == polling.rounds

    def test_wake_list_step_savings(self):
        graph, matching = matcher_state()
        d = 2 * round(1.0 / EPS) + 1
        parked_steps = {}
        polling_steps = {}
        waiting_phase_wave(graph, matching, d, seed=3, park=True,
                           steps=parked_steps)
        waiting_phase_wave(graph, matching, d, seed=3, park=False,
                           steps=polling_steps)
        stepped = parked_steps.get("stepped", 0)
        polled = polling_steps.get("stepped", 0)
        # A parked waiter is stepped once per probe delivery; the
        # polling twin steps every matched node every round.  Pin a
        # conservative 3× saving (measured ~7× on this fixed-seed
        # workload) so a slightly different matcher state cannot break
        # the test while a scheduling regression still will.
        assert stepped > 0, "the wave reached no waiter at all"
        assert stepped * 3 < polled, (
            f"wake-list savings regressed: {stepped} parked steps vs "
            f"{polled} polling steps"
        )

    def test_wave_reaches_exactly_the_d_neighborhood(self):
        graph, matching = matcher_state()
        d = 3
        result = waiting_phase_wave(graph, matching, d, seed=4)
        matched = {v for e in matching for v in e}
        free = set(graph.nodes) - matched
        reached = {node for node, out in result.outputs.items()
                   if out is not None and out[0] == "reached"}
        untouched = {node for node, out in result.outputs.items()
                     if out is None}
        # On a path, distance is |i - j|: a waiter is reached iff some
        # free node sits within d hops.
        for node in reached:
            assert min(abs(node - f) for f in free) <= d
        for node in untouched:
            assert min(abs(node - f) for f in free) > d
        assert untouched, (
            "every waiter was probed — the workload cannot show the "
            "laggard saving"
        )
