"""Tests for the footnote-5 weight-group matching on G."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import matching_local_ratio, weight_group_matching
from repro.errors import InvalidInstance
from repro.graphs import (
    assign_edge_weights,
    check_matching,
    cycle_graph,
    gnp_graph,
    path_graph,
    star_graph,
)
from repro.matching import optimum_weight


class TestWeightGroupMatching:
    @pytest.mark.parametrize("seed", range(5))
    def test_two_approximation(self, seed):
        g = assign_edge_weights(gnp_graph(18, 0.25, seed=seed), 32,
                                seed=seed + 1)
        result = weight_group_matching(g, seed=seed)
        check_matching(g, [tuple(e) for e in result.matching])
        assert 2 * result.weight >= optimum_weight(g)

    def test_structured_graphs(self):
        for g in (path_graph(9), cycle_graph(10), star_graph(7)):
            assign_edge_weights(g, 16, seed=2)
            result = weight_group_matching(g, seed=3)
            check_matching(g, [tuple(e) for e in result.matching])
            assert 2 * result.weight >= optimum_weight(g)

    def test_bimodal_weights(self):
        g = assign_edge_weights(gnp_graph(24, 0.2, seed=4), 200,
                                scheme="bimodal", seed=5)
        result = weight_group_matching(g, seed=6)
        assert 2 * result.weight >= optimum_weight(g)

    def test_matches_line_graph_formulation_quality(self):
        """Footnote 5: the direct formulation achieves the same factor
        as Algorithm 2 on L(G); on any shared instance both are within
        the bound (they need not pick identical matchings)."""

        g = assign_edge_weights(gnp_graph(16, 0.3, seed=7), 32, seed=8)
        direct = weight_group_matching(g, seed=9)
        via_lines = matching_local_ratio(g, method="layers", seed=9)
        opt = optimum_weight(g)
        assert 2 * direct.weight >= opt
        assert 2 * via_lines.weight >= opt

    def test_empty_graph(self):
        import networkx as nx

        result = weight_group_matching(nx.Graph())
        assert result.matching == set()
        assert result.weight == 0

    def test_single_edge(self):
        g = assign_edge_weights(path_graph(2), 5, seed=1)
        result = weight_group_matching(g)
        assert len(result.matching) == 1

    def test_rejects_non_positive_weights(self):
        import networkx as nx

        g = nx.Graph()
        g.add_edge(0, 1, weight=0)
        with pytest.raises(InvalidInstance):
            weight_group_matching(g)

    def test_ledger_breakdown(self, edge_weighted_graph):
        result = weight_group_matching(edge_weighted_graph)
        assert result.rounds == result.ledger.total
        assert "maximal-matching" in result.ledger.breakdown
        assert result.iterations >= 1

    def test_deterministic_per_seed(self, edge_weighted_graph):
        a = weight_group_matching(edge_weighted_graph, seed=11)
        b = weight_group_matching(edge_weighted_graph, seed=11)
        assert a.matching == b.matching

    @given(st.integers(min_value=0, max_value=25))
    @settings(max_examples=10, deadline=None)
    def test_property_two_approx(self, seed):
        g = assign_edge_weights(gnp_graph(12, 0.3, seed=seed), 16,
                                seed=seed)
        result = weight_group_matching(g, seed=seed + 40)
        check_matching(g, [tuple(e) for e in result.matching])
        assert 2 * result.weight >= optimum_weight(g)
