"""The ``ResumeMismatch`` relaxation: ``resume(..., allow=MutationCompat)``.

Pins the four edge cases the policy must get right:

* an **empty batch** goes through the strict (fingerprint-equal) path
  and is bit-identical to a plain ``resume()``;
* a mutation touching an already-**halted** node revives it and the
  continuation completes with a certified solution on the mutated
  graph;
* **delete-then-reinsert** of the same edge is a net no-op — the
  fingerprints match again and the policy is never consulted;
* an **incompatible** mutation (node removal) still raises
  :class:`~repro.errors.ResumeMismatch`, as does an undeclared edit.
"""

from dataclasses import replace

import pytest

from repro.api import COMPLETE, Instance, resume, solve
from repro.api.serialize import from_jsonable
from repro.dynamic import (
    MutationBatch,
    MutationCompat,
    add_edge,
    apply_batch,
    remove_edge,
    remove_node,
    set_node_weight,
)
from repro.errors import ResumeMismatch
from repro.graphs import assign_node_weights, gnp_graph

ALGORITHM = "maxis-layers"


def base_instance(seed=3):
    g = assign_node_weights(gnp_graph(40, 0.12, seed=1), 8, seed=2)
    return Instance(g, seed=seed)


def truncated_with_halted_nodes(instance):
    """Truncate at the first phase boundary where some node has halted
    (deterministic for fixed seeds)."""

    full = solve(replace(instance, max_rounds=None), ALGORITHM)
    for budget in range(3, full.rounds + 3, 3):
        report = solve(replace(instance, max_rounds=budget), ALGORITHM)
        if report.status == COMPLETE:
            break
        state = from_jsonable(report.resume_state["state"])
        if state["sim"]["halted"]:
            return report, state
    pytest.fail("no truncation point with halted nodes")


def test_empty_batch_is_bit_identical_to_plain_resume():
    instance = base_instance()
    report = solve(replace(instance, max_rounds=9), ALGORITHM)
    assert report.status != COMPLETE
    plain = resume(report)
    relaxed = resume(report, allow=MutationCompat(MutationBatch()))
    assert relaxed.solution == plain.solution
    assert relaxed.objective == plain.objective
    assert relaxed.rounds == plain.rounds
    assert relaxed.metrics.bits == plain.metrics.bits
    assert relaxed.metrics.messages == plain.metrics.messages


def test_mutation_touching_a_halted_node_revives_it():
    instance = base_instance()
    report, state = truncated_with_halted_nodes(instance)
    halted_node = sorted(state["sim"]["halted"], key=repr)[0]
    batch = MutationBatch((set_node_weight(halted_node, 200),))
    mutated = apply_batch(instance.graph, batch)
    continued = resume(
        report,
        instance=replace(instance, graph=mutated, max_rounds=None),
        allow=MutationCompat(batch, base=instance.graph),
    )
    assert continued.status == COMPLETE
    continued.certify()  # raises on an infeasible solution
    # The revived node's new weight dominates its neighborhood, so the
    # repaired solution must now include it.
    assert halted_node in continued.solution


def test_delete_then_reinsert_is_a_net_noop():
    instance = base_instance()
    report = solve(replace(instance, max_rounds=9), ALGORITHM)
    edge = sorted(instance.graph.edges, key=repr)[0]
    batch = MutationBatch((remove_edge(*edge), add_edge(*edge)))
    relaxed = resume(report, allow=MutationCompat(batch,
                                                  base=instance.graph))
    plain = resume(report)
    assert relaxed.solution == plain.solution
    assert relaxed.rounds == plain.rounds
    assert relaxed.metrics.bits == plain.metrics.bits


def test_node_removal_still_raises_resume_mismatch():
    instance = base_instance()
    report = solve(replace(instance, max_rounds=9), ALGORITHM)
    victim = sorted(instance.graph.nodes, key=repr)[0]
    batch = MutationBatch((remove_node(victim),))
    mutated = apply_batch(instance.graph, batch)
    with pytest.raises(ResumeMismatch, match="not resume-compatible"):
        resume(report,
               instance=replace(instance, graph=mutated),
               allow=MutationCompat(batch, base=instance.graph))


def test_undeclared_edit_still_raises_resume_mismatch():
    instance = base_instance()
    report = solve(replace(instance, max_rounds=9), ALGORITHM)
    declared = MutationBatch((set_node_weight(0, 3),))
    # Instance actually differs by a *different* edit.
    sneaky = apply_batch(instance.graph,
                         MutationBatch((set_node_weight(1, 3),)))
    with pytest.raises(ResumeMismatch):
        resume(report,
               instance=replace(instance, graph=sneaky),
               allow=MutationCompat(declared, base=instance.graph))


def test_algorithm_without_splicer_keeps_strict_rule():
    g = gnp_graph(30, 0.15, seed=1)
    instance = Instance(g, seed=3)
    report = None
    for budget in range(1, 40):
        report = solve(replace(instance, max_rounds=budget),
                       "maxis-coloring")
        if report.status != COMPLETE:
            break
    assert report is not None and report.status != COMPLETE
    batch = MutationBatch((remove_edge(*sorted(g.edges, key=repr)[0]),))
    mutated = apply_batch(g, batch)
    with pytest.raises(ResumeMismatch, match="no mutation splicer"):
        resume(report,
               instance=replace(instance, graph=mutated),
               allow=MutationCompat(batch, base=g))
