"""``resolve_incremental``: warm-started re-solve over a churn stream.

Every per-version report must be a certified feasible solution of
*that* version's graph, repair cost must be the cumulative-round
delta, the whole run must be deterministic, and the object and array
backends must agree bit for bit.
"""

import pytest

from repro.api import COMPLETE, Instance, solve
from repro.dynamic import (
    DynamicInstance,
    add_edge,
    remove_edge,
    resolve_incremental,
    set_node_weight,
)
from repro.graphs import assign_node_weights, gnp_graph


def maxis_dynamic(seed=3, backend=None):
    g = assign_node_weights(gnp_graph(50, 0.1, seed=1), 8, seed=2)
    edges = sorted(g.edges, key=repr)
    absent = next((u, v) for u in g for v in g
                  if u != v and not g.has_edge(u, v))
    return DynamicInstance(
        Instance(g, seed=seed, backend=backend),
        batches=[
            [remove_edge(*edges[0]), set_node_weight(7, 11)],
            [add_edge(*absent)],
            [remove_edge(*edges[9])],
        ],
    )


def matching_dynamic(seed=3):
    g = gnp_graph(60, 0.08, seed=1)
    edges = sorted(g.edges, key=repr)
    return DynamicInstance(
        Instance(g, seed=seed),
        batches=[[remove_edge(*edges[0])], [remove_edge(*edges[11])]],
    )


class TestMaxISIncremental:
    def test_every_version_is_certified_on_its_own_graph(self):
        dyn = maxis_dynamic()
        result = resolve_incremental(dyn, "maxis-layers")
        assert len(result.steps) == len(dyn) + 1
        for step in result.steps:
            assert step.report.status == COMPLETE
            assert step.report.instance.graph is dyn.graph(step.version)
            step.report.certify()

    def test_repair_rounds_are_cumulative_deltas(self):
        result = resolve_incremental(maxis_dynamic(), "maxis-layers")
        rounds = [step.report.rounds for step in result.steps]
        assert rounds == sorted(rounds)
        for prev, step in zip(result.steps, result.steps[1:]):
            assert step.repair_rounds == \
                step.report.rounds - prev.report.rounds
        assert result.total_repair_rounds == rounds[-1] - rounds[0]

    def test_repair_is_cheaper_than_scratch(self):
        dyn = maxis_dynamic()
        result = resolve_incremental(dyn, "maxis-layers")
        scratch_rounds = sum(
            solve(dyn.version(t), "maxis-layers").rounds
            for t in range(1, len(dyn) + 1)
        )
        assert result.total_repair_rounds < scratch_rounds

    def test_deterministic(self):
        a = resolve_incremental(maxis_dynamic(), "maxis-layers")
        b = resolve_incremental(maxis_dynamic(), "maxis-layers")
        for sa, sb in zip(a.steps, b.steps):
            assert sa.report.solution == sb.report.solution
            assert sa.report.rounds == sb.report.rounds
            assert sa.report.metrics.bits == sb.report.metrics.bits

    def test_array_backend_matches_object_backend(self):
        obj = resolve_incremental(maxis_dynamic(), "maxis-layers")
        arr = resolve_incremental(maxis_dynamic(backend="array"),
                                  "maxis-layers")
        for so, sa in zip(obj.steps, arr.steps):
            assert so.report.solution == sa.report.solution
            assert so.report.objective == sa.report.objective
            assert so.report.rounds == sa.report.rounds

    def test_region_is_reported_for_mutated_versions(self):
        result = resolve_incremental(maxis_dynamic(), "maxis-layers")
        assert result.steps[0].region == frozenset()
        assert all(step.region for step in result.steps[1:])


class TestMatchingIncremental:
    def test_certified_and_complete_at_every_version(self):
        dyn = matching_dynamic()
        result = resolve_incremental(dyn, "matching-proposal")
        for step in result.steps:
            assert step.report.status == COMPLETE
            step.report.certify()

    def test_objective_parity_within_guarantee(self):
        dyn = matching_dynamic()
        result = resolve_incremental(dyn, "matching-proposal")
        for t in range(1, len(dyn) + 1):
            scratch = solve(dyn.version(t), "matching-proposal")
            incremental = result.steps[t].report
            bound = scratch.bound
            assert incremental.objective * bound >= scratch.objective
            assert scratch.objective * bound >= incremental.objective

    def test_deterministic(self):
        a = resolve_incremental(matching_dynamic(), "matching-proposal")
        b = resolve_incremental(matching_dynamic(), "matching-proposal")
        for sa, sb in zip(a.steps, b.steps):
            assert sa.report.solution == sb.report.solution
            assert sa.report.rounds == sb.report.rounds


def test_unsupported_algorithm_fails_with_typed_error():
    from repro.errors import ResumeError

    g = gnp_graph(30, 0.15, seed=1)
    dyn = DynamicInstance(
        Instance(g, seed=3),
        batches=[[remove_edge(*sorted(g.edges, key=repr)[0])]],
    )
    with pytest.raises(ResumeError):
        resolve_incremental(dyn, "matching-israeli-itai")
