"""Mutation vocabulary: typed validation, normalization, inversion."""

import networkx as nx
import pytest

from repro.api import Instance
from repro.dynamic import (
    DynamicInstance,
    Mutation,
    MutationBatch,
    add_edge,
    add_node,
    apply_batch,
    graphs_equal,
    influence_region,
    invert_batch,
    remove_edge,
    remove_node,
    set_edge_weight,
    set_node_weight,
)
from repro.errors import InvalidInstance, InvalidMutation
from repro.graphs import assign_node_weights, gnp_graph


def small_graph():
    g = nx.Graph()
    g.add_nodes_from(range(5))
    g.add_edges_from([(0, 1), (1, 2), (2, 3), (3, 4)])
    nx.set_node_attributes(g, {v: v + 1 for v in g}, "weight")
    return g


class TestApplyBatch:
    def test_apply_does_not_mutate_the_input(self):
        g = small_graph()
        before_edges = set(g.edges)
        out = apply_batch(g, [remove_edge(0, 1), add_edge(0, 2)])
        assert set(g.edges) == before_edges
        assert not out.has_edge(0, 1) and out.has_edge(0, 2)

    def test_weight_changes(self):
        g = small_graph()
        out = apply_batch(g, [set_node_weight(3, 99),
                              set_edge_weight(0, 1, 7)])
        assert out.nodes[3]["weight"] == 99
        assert out.edges[0, 1]["weight"] == 7

    def test_node_add_remove(self):
        g = small_graph()
        out = apply_batch(g, [add_node(9, weight=4), add_edge(9, 0),
                              remove_node(4)])
        assert out.has_edge(9, 0) and out.nodes[9]["weight"] == 4
        assert 4 not in out

    def test_unknown_node_raises_typed_error(self):
        g = small_graph()
        with pytest.raises(InvalidMutation, match="absent from the base"):
            apply_batch(g, [add_edge(0, 77)])
        with pytest.raises(InvalidMutation, match="absent from the base"):
            apply_batch(g, [set_node_weight(77, 3)])

    def test_typed_error_is_an_invalid_instance(self):
        g = small_graph()
        with pytest.raises(InvalidInstance):
            apply_batch(g, [remove_edge(0, 3)])  # edge does not exist

    def test_duplicate_edge_and_self_loop_rejected(self):
        g = small_graph()
        with pytest.raises(InvalidMutation, match="re-inserts"):
            apply_batch(g, [add_edge(0, 1)])
        with pytest.raises(InvalidMutation, match="self-loop"):
            apply_batch(g, [add_edge(2, 2)])

    def test_malformed_mutations_rejected_at_construction(self):
        with pytest.raises(InvalidMutation):
            Mutation("frobnicate", 0, 1)
        with pytest.raises(InvalidMutation):
            Mutation("add_edge", 0)  # missing endpoint
        with pytest.raises(InvalidMutation):
            Mutation("set_node_weight", 0)  # missing weight


class TestNormalizeInvert:
    def test_normalized_batch_round_trips(self):
        g = assign_node_weights(gnp_graph(30, 0.15, seed=1), 8, seed=2)
        edges = sorted(g.edges, key=repr)
        mutated, batch = apply_batch(
            g,
            [remove_edge(*edges[0]), set_node_weight(3, 50),
             set_edge_weight(*edges[5], 9)],
            record=True,
        )
        assert all(m.prior is not None for m in batch)
        assert graphs_equal(invert_batch(mutated, batch), g)

    def test_unnormalized_weight_change_is_not_invertible(self):
        g = small_graph()
        mutated = apply_batch(g, [set_node_weight(1, 42)])
        with pytest.raises(InvalidMutation, match="no prior"):
            invert_batch(mutated, [set_node_weight(1, 42)])


class TestInfluenceRegion:
    def test_radius_zero_is_touched_nodes(self):
        g = small_graph()
        target = apply_batch(g, [remove_edge(1, 2)])
        assert influence_region(g, target, [remove_edge(1, 2)],
                                radius=0) == {1, 2}

    def test_radius_one_spans_union_adjacency(self):
        g = small_graph()
        target = apply_batch(g, [remove_edge(1, 2)])
        # Neighbors over before ∪ after edges: 0 (of 1) and 3 (of 2).
        assert influence_region(g, target, [remove_edge(1, 2)],
                                radius=1) == {0, 1, 2, 3}

    def test_empty_batch_empty_region(self):
        g = small_graph()
        assert influence_region(g, g, MutationBatch()) == set()


class TestDynamicInstance:
    def test_versions_are_independent_snapshots(self):
        g = small_graph()
        dyn = DynamicInstance(Instance(g, seed=1), batches=[
            [remove_edge(0, 1)], [add_edge(0, 1, weight=3)],
        ])
        assert len(dyn) == 2
        assert dyn.graph(0).has_edge(0, 1)
        assert not dyn.graph(1).has_edge(0, 1)
        assert dyn.graph(2).edges[0, 1]["weight"] == 3
        assert dyn.version(1, max_rounds=9).max_rounds == 9

    def test_batches_are_normalized(self):
        g = small_graph()
        dyn = DynamicInstance(Instance(g, seed=1),
                              batches=[[set_node_weight(2, 9)]])
        (mutation,) = tuple(dyn.batches[0])
        assert mutation.prior == 3  # small_graph weights are v + 1

    def test_invalid_mutation_fails_eagerly(self):
        g = small_graph()
        with pytest.raises(InvalidMutation, match="absent from the base"):
            DynamicInstance(Instance(g, seed=1),
                            batches=[[remove_edge(0, 99)]])
