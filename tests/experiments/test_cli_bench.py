"""CLI round-trip: ``python -m repro bench`` end to end."""

import json

from repro.__main__ import main
from repro.experiments import validate_artifact


class TestBenchList:
    def test_list_shows_every_registered_experiment(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("table1", "layers", "congestion", "figure1",
                     "nmis_decay", "proposal", "ablation", "comparison",
                     "smoke"):
            assert name in out

    def test_bench_without_experiment_errors(self, capsys):
        assert main(["bench"]) == 2
        assert "--list" in capsys.readouterr().err


class TestBenchRun:
    def test_smoke_json_stdout_round_trip(self, capsys):
        exit_code = main(["bench", "smoke", "--json", "-"])
        out = capsys.readouterr().out
        artifact = json.loads(out)
        assert exit_code == 0
        assert artifact["experiment"] == "smoke"
        assert validate_artifact(artifact) == []

    def test_smoke_writes_default_artifact(self, tmp_path, monkeypatch,
                                           capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "smoke", "--section", "maxis_ratio"]) == 0
        out = capsys.readouterr().out
        assert "smoke-a" in out  # rendered table
        artifact = json.loads(
            (tmp_path / "BENCH_smoke.json").read_text()
        )
        assert [s["name"] for s in artifact["sections"]] == [
            "maxis_ratio"
        ]

    def test_output_flag_and_validate_round_trip(self, tmp_path, capsys):
        path = tmp_path / "artifacts" / "BENCH_smoke.json"
        assert main(["bench", "smoke", "--section", "maxis_ratio",
                     "--output", str(path)]) == 0
        capsys.readouterr()
        assert main(["bench", "--validate", str(path)]) == 0
        assert "valid artifact" in capsys.readouterr().out

    def test_validate_rejects_corrupt_artifact(self, tmp_path, capsys):
        path = tmp_path / "BENCH_bad.json"
        path.write_text(json.dumps({"schema": "nope"}))
        assert main(["bench", "--validate", str(path)]) == 1
        assert "invalid" in capsys.readouterr().err

    def test_validate_missing_file_exits_cleanly(self, tmp_path, capsys):
        assert main(["bench", "--validate",
                     str(tmp_path / "nope.json")]) == 1
        assert "cannot read artifact" in capsys.readouterr().err

    def test_validate_non_json_exits_cleanly(self, tmp_path, capsys):
        path = tmp_path / "garbage.json"
        path.write_text("not json {")
        assert main(["bench", "--validate", str(path)]) == 1
        assert "cannot read artifact" in capsys.readouterr().err

    def test_render_from_artifact_file(self, tmp_path, capsys):
        path = tmp_path / "BENCH_smoke.json"
        assert main(["bench", "smoke", "--section", "maxis_ratio",
                     "--json", str(path)]) == 0
        capsys.readouterr()
        assert main(["bench", "--render", str(path)]) == 0
        out = capsys.readouterr().out
        assert "smoke-a" in out and "PASSED" in out

    def test_json_path_and_output_conflict(self, tmp_path, capsys):
        assert main(["bench", "smoke", "--json", str(tmp_path / "a.json"),
                     "--output", str(tmp_path / "b.json")]) == 2
        assert "not both" in capsys.readouterr().err

    def test_json_path_writes_and_renders(self, tmp_path, capsys):
        path = tmp_path / "a.json"
        assert main(["bench", "smoke", "--section", "maxis_ratio",
                     "--json", str(path)]) == 0
        out = capsys.readouterr().out
        assert "smoke-a" in out  # tables still rendered
        assert json.loads(path.read_text())["experiment"] == "smoke"

    def test_no_artifact_beats_json_path(self, tmp_path, capsys):
        path = tmp_path / "a.json"
        assert main(["bench", "smoke", "--section", "maxis_ratio",
                     "--json", str(path), "--no-artifact"]) == 0
        capsys.readouterr()
        assert not path.exists()

    def test_no_artifact_flag(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "smoke", "--section", "maxis_ratio",
                     "--no-artifact"]) == 0
        capsys.readouterr()
        assert not (tmp_path / "BENCH_smoke.json").exists()

    def test_unknown_experiment_exits_cleanly(self, capsys):
        assert main(["bench", "not-an-experiment"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err
        assert "table1" in err  # inventory listed for discoverability

    def test_unknown_section_exits_cleanly(self, capsys):
        assert main(["bench", "smoke", "--section", "nope"]) == 2
        assert "maxis_ratio" in capsys.readouterr().err

    def test_failed_checks_exit_nonzero(self, tmp_path, monkeypatch,
                                        capsys):
        """Regression gate: a spec whose check fails exits 1."""

        from repro.experiments import catalog

        monkeypatch.chdir(tmp_path)
        monkeypatch.setitem(catalog.SMOKE_SIM_EXPECTED, "rounds", -1)
        assert main(["bench", "smoke", "--no-artifact"]) == 1
        assert "FAIL" in capsys.readouterr().out
