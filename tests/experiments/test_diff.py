"""Artifact diffing: check regressions, row drift, timing trends, CLI."""

import json

import pytest

from repro.__main__ import main
from repro.experiments import diff_artifacts, render_diff


def artifact(rows=(), checks=(), timing=None, name="exp"):
    sections = [{
        "name": "s1",
        "title": "section one",
        "measurement": "m",
        "render": "table",
        "render_params": {},
        "trials": [],
        "rows": list(rows),
        "checks": list(checks),
    }]
    doc = {
        "schema": "repro-bench/1",
        "experiment": name,
        "title": name,
        "description": "",
        "sections": sections,
        "summary": {
            "sections": 1,
            "trials": 0,
            "checks_total": len(checks),
            "checks_failed": sum(1 for c in checks if not c["passed"]),
            "passed": all(c["passed"] for c in checks),
        },
    }
    if timing is not None:
        doc["timing"] = timing
    return doc


def check(name, passed, detail=""):
    return {"name": name, "passed": passed, "detail": detail}


class TestDiffArtifacts:
    def test_identical_artifacts_have_no_differences(self):
        a = artifact(rows=[{"x": 1}], checks=[check("c", True)])
        diff = diff_artifacts(a, a)
        assert diff["regression_count"] == 0
        assert not diff["regressions"]
        assert all(s["status"] == "unchanged" for s in diff["sections"])
        assert "no differences" in render_diff(diff)

    def test_check_regression_detected(self):
        old = artifact(checks=[check("bound", True)])
        new = artifact(checks=[check("bound", False, "ratio 2.7 > 2.5")])
        diff = diff_artifacts(old, new)
        assert diff["regression_count"] == 1
        assert diff["regressions"][0]["check"] == "bound"
        assert "REGRESSION" in render_diff(diff)

    def test_fix_is_not_a_regression(self):
        old = artifact(checks=[check("bound", False)])
        new = artifact(checks=[check("bound", True)])
        diff = diff_artifacts(old, new)
        assert diff["regression_count"] == 0
        assert diff["fixes"][0]["check"] == "bound"

    def test_removed_passing_check_counts_as_regression(self):
        old = artifact(checks=[check("bound", True)])
        new = artifact(checks=[])
        diff = diff_artifacts(old, new)
        assert diff["regression_count"] == 1
        assert diff["removed_checks"][0] == {
            "section": "s1", "check": "bound", "was_passing": True,
        }
        assert "REMOVED CHECK" in render_diff(diff)

    def test_removed_failing_check_is_surfaced_but_not_gating(self):
        old = artifact(checks=[check("bound", False)])
        new = artifact(checks=[])
        diff = diff_artifacts(old, new)
        assert diff["regression_count"] == 0
        assert diff["removed_checks"][0]["was_passing"] is False
        assert "removed check (was failing)" in render_diff(diff)

    def test_new_failing_check_counts_as_regression(self):
        old = artifact(checks=[])
        new = artifact(checks=[check("fresh", False, "boom")])
        diff = diff_artifacts(old, new)
        assert diff["regression_count"] == 1
        assert diff["added_failing"][0]["check"] == "fresh"

    def test_numeric_row_drift_reports_delta_and_pct(self):
        old = artifact(rows=[{"p50": 2.0, "label": "a"}])
        new = artifact(rows=[{"p50": 3.0, "label": "a"}])
        diff = diff_artifacts(old, new)
        (entry,) = diff["sections"][0]["drift"]
        assert entry["field"] == "p50"
        assert entry["delta"] == pytest.approx(1.0)
        assert entry["pct"] == pytest.approx(50.0)
        assert "+50.0%" in render_diff(diff)

    def test_row_count_change_is_reported(self):
        old = artifact(rows=[{"x": 1}])
        new = artifact(rows=[{"x": 1}, {"x": 2}])
        diff = diff_artifacts(old, new)
        fields = [e["field"] for e in diff["sections"][0]["drift"]]
        assert "<row count>" in fields

    def test_timing_blocks_compared(self):
        old = artifact(timing={"sections": {"s1": 1.0},
                               "seconds_total": 1.0})
        new = artifact(timing={"sections": {"s1": {"seconds": 1.2,
                                                   "p50": 1.1}},
                               "seconds_total": 1.2})
        diff = diff_artifacts(old, new)
        assert diff["timing"]["s1"]["old"] == pytest.approx(1.0)
        assert diff["timing"]["s1"]["new"] == pytest.approx(1.1)

    def test_added_and_removed_sections(self):
        old = artifact()
        new = artifact()
        new["sections"][0]["name"] = "s2"
        diff = diff_artifacts(old, new)
        statuses = {s["name"]: s["status"] for s in diff["sections"]}
        assert statuses == {"s1": "removed", "s2": "added"}


class TestCliDiff:
    def write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    def test_clean_diff_exits_zero(self, tmp_path, capsys):
        a = self.write(tmp_path, "old.json",
                       artifact(checks=[check("c", True)]))
        assert main(["bench", "--diff", a, a]) == 0
        assert "no differences" in capsys.readouterr().out

    def test_regression_exits_nonzero(self, tmp_path, capsys):
        old = self.write(tmp_path, "old.json",
                         artifact(checks=[check("c", True)]))
        new = self.write(tmp_path, "new.json",
                         artifact(checks=[check("c", False, "broke")]))
        assert main(["bench", "--diff", old, new]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_unreadable_artifact_reports_error(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        good = self.write(tmp_path, "old.json", artifact())
        assert main(["bench", "--diff", good, missing]) == 1
        assert "cannot read artifact" in capsys.readouterr().err
