"""Parallel runner: worker-count determinism, repeat timing, CLI flags."""

import json

import pytest

from repro.experiments import Runner, artifact_to_json, get_experiment
from repro.experiments.runner import percentile
from repro.__main__ import main

SMOKE = get_experiment("smoke")


class TestWorkerDeterminism:
    def test_artifact_bytes_identical_across_worker_counts(self):
        serial = artifact_to_json(Runner(SMOKE).run())
        pooled = artifact_to_json(Runner(SMOKE, workers=2).run())
        assert serial == pooled

    def test_thread_backend_matches_too(self):
        serial = artifact_to_json(Runner(SMOKE).run(["maxis_ratio"]))
        threaded = artifact_to_json(
            Runner(SMOKE, workers=2, backend="thread").run(["maxis_ratio"])
        )
        assert serial == threaded

    def test_parallel_trial_failure_aborts_with_context(self):
        spec = get_experiment("smoke")
        runner = Runner(spec, workers=2, backend="thread")
        # sabotage the plan: an unknown measurement fails in the worker
        section = spec.section("maxis_ratio")
        plan = runner._section_plan(section)
        plan[0]["measurement"] = "definitely-not-registered"
        with pytest.raises(RuntimeError) as err:
            runner._execute_parallel(plan)
        assert "definitely-not-registered" in str(err.value)


class TestPercentile:
    def test_endpoints_and_interpolation(self):
        samples = [4.0, 1.0, 3.0, 2.0]
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 100.0) == 4.0
        assert percentile(samples, 50.0) == 2.5
        assert percentile([7.0], 95.0) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50.0)


class TestRepeatTiming:
    def test_single_sample_keeps_legacy_shape(self):
        artifact = Runner(SMOKE, timing=True).run(["maxis_ratio"])
        sections = artifact["timing"]["sections"]
        assert isinstance(sections["maxis_ratio"], float)
        assert artifact["timing"]["seconds_total"] > 0

    def test_repeat_reports_percentiles(self):
        artifact = Runner(SMOKE, timing=True, repeat=3).run(["maxis_ratio"])
        block = artifact["timing"]["sections"]["maxis_ratio"]
        assert block["repeats"] == 3
        assert block["p50"] > 0
        assert block["p95"] >= block["p50"] >= block["min"]
        assert block["max"] >= block["p95"]
        assert block["trials_per_sec"] > 0
        assert artifact["timing"]["seconds_total"] > 0

    def test_repeat_is_timing_only(self):
        """Repeats never leak into the deterministic artifact body."""

        once = Runner(SMOKE, timing=True).run(["maxis_ratio"])
        thrice = Runner(SMOKE, timing=True, repeat=3).run(["maxis_ratio"])
        del once["timing"], thrice["timing"]
        assert artifact_to_json(once) == artifact_to_json(thrice)

    def test_repeat_ignored_without_timing(self):
        runner = Runner(SMOKE, repeat=5)
        assert runner.repeat == 1


class TestCli:
    def test_workers_flag_round_trips(self, tmp_path, capsys):
        out = tmp_path / "smoke_workers.json"
        code = main(["bench", "smoke", "--section", "maxis_ratio",
                     "--workers", "2", "--json", str(out)])
        assert code == 0
        artifact = json.loads(out.read_text())
        assert artifact["summary"]["passed"] is True

    def test_repeat_requires_timing(self, capsys):
        code = main(["bench", "smoke", "--repeat", "3"])
        assert code == 2
        assert "--timing" in capsys.readouterr().err

    def test_timing_repeat_emits_percentiles(self, tmp_path):
        out = tmp_path / "smoke_timed.json"
        code = main(["bench", "smoke", "--section", "maxis_ratio",
                     "--timing", "--repeat", "2", "--json", str(out)])
        assert code == 0
        artifact = json.loads(out.read_text())
        block = artifact["timing"]["sections"]["maxis_ratio"]
        assert block["repeats"] == 2
        assert "p95" in block
