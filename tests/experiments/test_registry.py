"""Registry lookups: experiments, measurements, graph families."""

import pytest

from repro.experiments import (
    UnknownExperiment,
    build_graph,
    get_experiment,
    get_measurement,
    list_experiments,
    list_measurements,
)
from repro.errors import ReproError


class TestExperimentRegistry:
    def test_catalog_registers_all_benchmarks(self):
        names = {spec.name for spec in list_experiments()}
        expected = {"table1", "layers", "congestion", "figure1",
                    "nmis_decay", "proposal", "ablation", "comparison",
                    "smoke"}
        assert expected <= names

    def test_lookup_returns_spec_with_sections(self):
        spec = get_experiment("smoke")
        assert spec.name == "smoke"
        assert len(spec.sections) >= 3
        assert spec.section("sim_microbench").measurement == (
            "simulator_microbench"
        )

    def test_unknown_experiment_raises_with_inventory(self):
        with pytest.raises(UnknownExperiment, match="table1"):
            get_experiment("definitely-not-registered")

    def test_unknown_experiment_is_a_repro_error(self):
        with pytest.raises(ReproError):
            get_experiment("nope")
        with pytest.raises(KeyError):
            get_experiment("nope")

    def test_unknown_section_lists_known_names(self):
        spec = get_experiment("smoke")
        with pytest.raises(KeyError, match="maxis_ratio"):
            spec.section("nope")

    def test_describe_is_jsonable_summary(self):
        description = get_experiment("table1").describe()
        assert description["name"] == "table1"
        assert {"name", "title", "measurement", "cells", "seeds",
                "checks"} <= set(description["sections"][0])


class TestMeasurementRegistry:
    def test_known_measurements_present(self):
        names = list_measurements()
        for expected in ("maxis_layers", "maxis_coloring",
                         "matching_lines", "oneeps_local",
                         "simulator_microbench"):
            assert expected in names

    def test_unknown_measurement_raises(self):
        with pytest.raises(UnknownExperiment):
            get_measurement("nope")

    def test_measurement_contract(self):
        """Adapters return (JSON-able measures, optional metrics)."""

        import json

        graph = build_graph({
            "family": "gnp", "args": {"n": 12, "p": 0.3, "seed": 1},
            "node_weights": {"max_weight": 8, "seed": 2},
        })
        measures, metrics = get_measurement("maxis_layers")(graph, 0)
        json.dumps(measures)  # must not raise
        assert measures["rounds"] >= 1
        assert metrics is not None and metrics.messages > 0


class TestGraphFamilies:
    def test_build_gnp_with_weights(self):
        graph = build_graph({
            "family": "gnp", "args": {"n": 10, "p": 0.5, "seed": 3},
            "node_weights": {"max_weight": 16, "seed": 4},
        })
        assert graph.number_of_nodes() == 10
        assert all("weight" in d for _, d in graph.nodes(data=True))

    def test_layered_geometric_weights_are_powers_of_two(self):
        graph = build_graph({
            "family": "layered_geometric",
            "args": {"layers": 4, "width": 3, "seed": 1},
        })
        for _, data in graph.nodes(data=True):
            assert data["weight"] == 2 ** data["layer"]

    def test_figure1_instance_ships_its_matching(self):
        graph = build_graph({"family": "figure1"})
        assert len(graph.graph["matching"]) == 3
        sides = {d["side"] for _, d in graph.nodes(data=True)}
        assert sides == {"A", "B"}

    def test_unknown_family_raises(self):
        with pytest.raises(UnknownExperiment):
            build_graph({"family": "hypercube", "args": {}})
