"""Runner execution, artifact schema and the determinism contract."""

import json

from repro.experiments import (
    Check,
    ExperimentSpec,
    Runner,
    Section,
    artifact_to_json,
    get_experiment,
    load_artifact,
    run_experiment,
    validate_artifact,
    write_artifact,
)

SMOKE = get_experiment("smoke")


def _tiny_spec(checks=(), seeds=(0, 1), derive_seeds=False):
    return ExperimentSpec(
        name="tiny",
        title="tiny test spec",
        sections=(
            Section(
                name="main",
                title="tiny section",
                measurement="maxis_layers",
                grid=(
                    {"graph": {"family": "gnp",
                               "args": {"n": 12, "p": 0.3, "seed": 1},
                               "node_weights": {"max_weight": 8,
                                                "seed": 2}}},
                ),
                seeds=seeds,
                derive_seeds=derive_seeds,
                checks=tuple(checks),
            ),
        ),
    )


class TestRunner:
    def test_trials_cover_grid_times_seeds(self):
        artifact = Runner(_tiny_spec()).run()
        assert artifact["summary"]["trials"] == 2
        section = artifact["sections"][0]
        assert [t["seed"] for t in section["trials"]] == [0, 1]

    def test_trial_records_measures_and_metrics(self):
        artifact = Runner(_tiny_spec()).run()
        trial = artifact["sections"][0]["trials"][0]
        assert trial["measures"]["rounds"] >= 1
        assert trial["metrics"]["messages"] > 0
        assert trial["graph"]["family"] == "gnp"

    def test_failed_check_is_recorded_not_raised(self):
        def impossible(rows):
            assert False, "always fails"

        spec = _tiny_spec(checks=[Check("impossible", impossible)])
        artifact = Runner(spec).run()
        check = artifact["sections"][0]["checks"][0]
        assert check["passed"] is False
        assert "always fails" in check["detail"]
        assert artifact["summary"]["passed"] is False
        assert artifact["summary"]["checks_failed"] == 1

    def test_crashing_check_is_recorded_not_raised(self):
        """The record-not-abort contract covers non-assertion crashes
        (a missing row key, an exhausted next()) too."""

        def crashes(rows):
            raise KeyError("missing_column")

        spec = _tiny_spec(checks=[Check("crashes", crashes)])
        artifact = Runner(spec).run()
        check = artifact["sections"][0]["checks"][0]
        assert check["passed"] is False
        assert "KeyError" in check["detail"]

    def test_non_finite_measures_serialize_as_failed_not_crash(self):
        """An infinite ratio (empty solution vs positive optimum) must
        yield a serializable artifact with a failed check, not a
        ValueError from json.dumps(allow_nan=False)."""

        from repro.experiments import register_measurement

        try:
            @register_measurement("_test_inf")
            def _inf(graph, seed):
                return {"ratio": float("inf"), "nan": float("nan")}, None
        except ValueError:
            pass  # already registered by a previous parametrization

        spec = ExperimentSpec(
            name="inftest", title="inf test",
            sections=(
                Section(
                    name="main", title="inf", measurement="_test_inf",
                    grid=({},),
                    checks=(Check("bounded",
                                  lambda rows: [r["ratio"] <= 2
                                                for r in rows]),),
                ),
            ),
        )
        artifact = Runner(spec).run()
        text = artifact_to_json(artifact)  # must not raise
        measures = artifact["sections"][0]["trials"][0]["measures"]
        assert measures["ratio"] == "inf"
        assert measures["nan"] == "nan"
        check = artifact["sections"][0]["checks"][0]
        assert check["passed"] is False  # str vs int comparison crashed
        assert "TypeError" in check["detail"]
        assert "inf" in text

    def test_derived_seeds_differ_from_literal(self):
        literal = Runner(_tiny_spec()).run()
        derived = Runner(_tiny_spec(derive_seeds=True)).run()
        literal_seeds = [t["seed"]
                         for t in literal["sections"][0]["trials"]]
        derived_seeds = [t["seed"]
                         for t in derived["sections"][0]["trials"]]
        assert literal_seeds == [0, 1]
        assert derived_seeds != literal_seeds
        again = Runner(_tiny_spec(derive_seeds=True)).run()
        assert derived_seeds == [
            t["seed"] for t in again["sections"][0]["trials"]
        ]

    def test_section_subset(self):
        artifact = Runner(SMOKE).run(sections=["maxis_ratio"])
        assert [s["name"] for s in artifact["sections"]] == ["maxis_ratio"]

    def test_run_experiment_wrapper(self):
        artifact = run_experiment(_tiny_spec())
        assert artifact["experiment"] == "tiny"


class TestDeterminism:
    def test_same_spec_same_seed_byte_identical_json(self):
        """The headline contract: repeated runs serialize identically."""

        first = artifact_to_json(Runner(SMOKE).run())
        second = artifact_to_json(Runner(SMOKE).run())
        assert first == second

    def test_timing_block_is_opt_in(self):
        plain = Runner(SMOKE).run(sections=["maxis_ratio"])
        timed = Runner(SMOKE, timing=True).run(sections=["maxis_ratio"])
        assert "timing" not in plain
        assert timed["timing"]["seconds_total"] > 0
        assert "maxis_ratio" in timed["timing"]["sections"]


class TestArtifact:
    def test_smoke_artifact_validates(self):
        artifact = Runner(SMOKE).run()
        assert validate_artifact(artifact) == []

    def test_write_and_load_round_trip(self, tmp_path):
        artifact = Runner(_tiny_spec()).run()
        path = write_artifact(artifact, tmp_path / "sub" / "a.json")
        assert path.name == "a.json"
        assert load_artifact(path) == artifact

    def test_default_artifact_filename(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        artifact = Runner(_tiny_spec()).run()
        path = write_artifact(artifact)
        assert path.name == "BENCH_tiny.json"

    def test_validator_rejects_wrong_schema(self):
        artifact = Runner(_tiny_spec()).run()
        artifact["schema"] = "repro-bench/999"
        assert any("schema" in p for p in validate_artifact(artifact))

    def test_validator_rejects_inconsistent_summary(self):
        artifact = Runner(_tiny_spec()).run()
        artifact["summary"]["trials"] += 1
        assert any("summary.trials" in p
                   for p in validate_artifact(artifact))

    def test_validator_rejects_truncated_sections(self):
        artifact = Runner(_tiny_spec()).run()
        del artifact["sections"][0]["rows"]
        assert any("rows" in p for p in validate_artifact(artifact))

    def test_validator_rejects_non_object(self):
        assert validate_artifact([1, 2]) != []

    def test_json_has_no_wallclock_by_default(self):
        text = artifact_to_json(Runner(SMOKE).run())
        assert "seconds" not in text
        assert json.loads(text)["schema"] == "repro-bench/1"
