"""FaultPlan: deterministic decisions, validation, (de)serialisation."""

from __future__ import annotations

import json
import pickle
import threading

import pytest

from repro.errors import FaultPlanError, TransientFault
from repro.faults import (
    FAULT_PLAN_FORMAT,
    SITES,
    FaultPlan,
    SiteRule,
    make_fault,
)


def _decisions(plan, site, scopes, rolls=20):
    return {scope: [plan.roll(site, scope) for _ in range(rolls)]
            for scope in scopes}


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        scopes = [f"job-{i:06d}-abc" for i in range(5)]
        first = _decisions(
            FaultPlan(seed=7, sites={"worker.transient": {"rate": 0.4}}),
            "worker.transient", scopes)
        second = _decisions(
            FaultPlan(seed=7, sites={"worker.transient": {"rate": 0.4}}),
            "worker.transient", scopes)
        assert first == second
        assert any(any(fired) for fired in first.values())

    def test_different_seeds_differ(self):
        scopes = [f"s{i}" for i in range(8)]
        a = _decisions(
            FaultPlan(seed=0, sites={"worker.transient": {"rate": 0.5}}),
            "worker.transient", scopes)
        b = _decisions(
            FaultPlan(seed=1, sites={"worker.transient": {"rate": 0.5}}),
            "worker.transient", scopes)
        assert a != b

    def test_scheduling_order_does_not_change_decisions(self):
        """Interleaving scopes across threads yields the same per-scope
        decision sequences as rolling them sequentially — the contract
        that makes BENCH_faults.json byte-reproducible."""

        sites = {"worker.transient": {"rate": 0.5}}
        scopes = [f"job{i}" for i in range(6)]
        sequential = _decisions(FaultPlan(seed=3, sites=sites),
                                "worker.transient", scopes)
        plan = FaultPlan(seed=3, sites=sites)
        results = {}

        def worker(scope):
            results[scope] = [plan.roll("worker.transient", scope)
                              for _ in range(20)]

        threads = [threading.Thread(target=worker, args=(scope,))
                   for scope in scopes]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert results == sequential

    def test_rate_zero_never_fires_rate_one_always(self):
        plan = FaultPlan(seed=0, sites={
            "journal.write": {"rate": 0.0},
            "worker.transient": {"rate": 1.0},
        })
        assert not any(plan.roll("journal.write", "s")
                       for _ in range(50))
        assert all(plan.roll("worker.transient", "s")
                   for _ in range(50))

    def test_inactive_site_never_fires(self):
        plan = FaultPlan(seed=0, sites={"journal.write": {"rate": 1.0}})
        assert plan.active("journal.write")
        assert not plan.active("worker.stall")
        assert plan.rule("worker.stall") is None
        assert not plan.roll("worker.stall", "s")
        plan.maybe_raise("worker.stall", "s")  # no-op, must not raise


class TestAfterAndLimit:
    def test_after_fires_exactly_on_nth_roll_per_scope(self):
        plan = FaultPlan(seed=0,
                         sites={"dispatcher.death": {"after": 3}})
        for scope in ("a", "b"):
            fired = [plan.roll("dispatcher.death", scope)
                     for _ in range(6)]
            assert fired == [False, False, True, False, False, False]

    def test_limit_caps_total_fires_across_scopes(self):
        plan = FaultPlan(seed=0, sites={
            "worker.transient": {"rate": 1.0, "limit": 2}})
        fired = [plan.roll("worker.transient", f"s{i}")
                 for i in range(5)]
        assert fired == [True, True, False, False, False]
        assert plan.stats()["fires"]["worker.transient"] == 2

    def test_stats_counts_checks_and_fires(self):
        plan = FaultPlan(seed=0, sites={
            "worker.transient": {"rate": 1.0}})
        for _ in range(3):
            plan.roll("worker.transient", "s")
        stats = plan.stats()
        assert stats["seed"] == 0
        assert stats["sites"] == ["worker.transient"]
        assert stats["checks"]["worker.transient"] == 3
        assert stats["fires"]["worker.transient"] == 3


class TestValidation:
    def test_unknown_site_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault site"):
            FaultPlan(sites={"journal.wirte": {"rate": 0.5}})

    def test_unknown_rule_key_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown rule keys"):
            FaultPlan(sites={"journal.write": {"rte": 0.5}})

    @pytest.mark.parametrize("rule", [
        {"rate": -0.1}, {"rate": 1.5}, {"after": 0},
        {"limit": -1}, {"stall_s": -1.0},
    ])
    def test_bad_rule_values_rejected(self, rule):
        with pytest.raises(FaultPlanError):
            FaultPlan(sites={"worker.stall": rule})


class TestSerialisation:
    def test_roundtrip(self):
        plan = FaultPlan(seed=11, sites={
            "worker.transient": {"rate": 0.3, "limit": 4},
            "worker.stall": {"rate": 0.2, "stall_s": 1.5},
            "dispatcher.death": {"after": 2},
        })
        data = plan.to_dict()
        assert data["format"] == FAULT_PLAN_FORMAT
        clone = FaultPlan.from_dict(data)
        assert clone.seed == plan.seed
        assert clone.sites == plan.sites
        scopes = ["x", "y"]
        assert _decisions(plan, "worker.transient", scopes) == \
            _decisions(clone, "worker.transient", scopes)

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({
            "format": FAULT_PLAN_FORMAT, "seed": 4,
            "sites": {"journal.write": {"rate": 1.0}},
        }))
        plan = FaultPlan.load(str(path))
        assert plan.seed == 4
        assert plan.active("journal.write")

    def test_load_rejects_missing_and_malformed(self, tmp_path):
        with pytest.raises(FaultPlanError, match="cannot read"):
            FaultPlan.load(str(tmp_path / "absent.json"))
        bad = tmp_path / "bad.json"
        bad.write_text("{torn")
        with pytest.raises(FaultPlanError, match="cannot read"):
            FaultPlan.load(str(bad))
        foreign = tmp_path / "foreign.json"
        foreign.write_text('{"format": "other/1", "sites": {}}')
        with pytest.raises(FaultPlanError, match="not a"):
            FaultPlan.load(str(foreign))

    def test_pickle_rebuilds_lock_and_keeps_decisions(self):
        plan = FaultPlan(seed=5, sites={
            "worker.transient": {"rate": 1.0, "limit": 3}})
        plan.roll("worker.transient", "a")
        clone = pickle.loads(pickle.dumps(plan))
        assert isinstance(clone._lock, type(threading.Lock()))
        # the fire counter travelled: 1 already spent, 2 left
        fired = [clone.roll("worker.transient", f"s{i}")
                 for i in range(4)]
        assert fired == [True, True, False, False]


class TestMakeFault:
    def test_typed_per_site(self):
        import errno

        exc = make_fault("journal.write")
        assert isinstance(exc, OSError)
        assert exc.errno == errno.ENOSPC
        assert isinstance(make_fault("worker.transient"), TransientFault)
        for site in ("journal.tmp", "worker.stall", "stream.disconnect",
                     "dispatcher.death"):
            fault = make_fault(site)
            assert isinstance(fault, RuntimeError)
            assert site in str(fault)

    def test_maybe_raise_raises_configured_exception(self):
        plan = FaultPlan(sites={"worker.transient": {"rate": 1.0}})
        with pytest.raises(TransientFault, match="injected fault"):
            plan.maybe_raise("worker.transient", "s")

    def test_every_registered_site_has_a_fault(self):
        for site in SITES:
            assert isinstance(make_fault(site), Exception)


class TestSiteRule:
    def test_defaults(self):
        rule = SiteRule()
        assert rule.rate == 0.0
        assert rule.after is None
        assert rule.limit is None
        assert rule.stall_s == 0.05
