"""RetryPolicy: deterministic backoff, classification, validation."""

from __future__ import annotations

import pytest

from repro.errors import ReproError, TransientFault
from repro.faults import DEFAULT_RETRY, RETRYABLE, RetryPolicy


class TestDelay:
    def test_deterministic_per_key_and_attempt(self):
        policy = RetryPolicy(seed=3)
        again = RetryPolicy(seed=3)
        for attempt in (1, 2, 3):
            assert policy.delay(attempt, key="job-1") == \
                again.delay(attempt, key="job-1")

    def test_keys_decorrelate(self):
        policy = RetryPolicy()
        delays = {policy.delay(1, key=f"job-{i}") for i in range(8)}
        assert len(delays) == 8

    def test_exponential_growth_within_jitter_envelope(self):
        policy = RetryPolicy(base_delay_s=0.1, factor=2.0,
                             max_delay_s=100.0, jitter=0.5)
        for attempt in (1, 2, 3, 4):
            base = 0.1 * 2.0 ** (attempt - 1)
            delay = policy.delay(attempt, key="k")
            assert base <= delay <= base * 1.5

    def test_cap_at_max_delay(self):
        policy = RetryPolicy(base_delay_s=1.0, factor=10.0,
                             max_delay_s=2.0, jitter=0.0)
        assert policy.delay(5, key="k") == 2.0

    def test_zero_jitter_is_exact(self):
        policy = RetryPolicy(base_delay_s=0.25, factor=2.0, jitter=0.0)
        assert policy.delay(1) == 0.25
        assert policy.delay(2) == 0.5


class TestClassification:
    def test_transient_is_retryable(self):
        policy = RetryPolicy()
        assert policy.retryable(TransientFault("flaky"))
        assert TransientFault in RETRYABLE

    @pytest.mark.parametrize("exc", [
        ValueError("bad"), OSError("disk"), RuntimeError("boom"),
        ReproError("domain"),
    ])
    def test_everything_else_fails_fast(self, exc):
        assert not RetryPolicy().retryable(exc)


class TestValidation:
    def test_defaults_are_sane(self):
        assert DEFAULT_RETRY.max_attempts == 3
        assert DEFAULT_RETRY.base_delay_s > 0

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"base_delay_s": -0.1},
        {"max_delay_s": -1.0},
        {"jitter": -0.5},
    ])
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)
