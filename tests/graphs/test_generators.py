"""Tests for graph generators: determinism and structural properties."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidInstance
from repro.graphs import (
    FAMILIES,
    bipartite_regular_graph,
    caterpillar_graph,
    complete_graph,
    cycle_graph,
    empty_graph,
    gnp_graph,
    grid_graph,
    max_degree,
    path_graph,
    power_law_graph,
    random_bipartite_graph,
    random_regular_graph,
    random_tree,
    star_graph,
)


class TestBasicShapes:
    def test_empty_graph(self):
        g = empty_graph(5)
        assert g.number_of_nodes() == 5
        assert g.number_of_edges() == 0

    def test_path(self):
        g = path_graph(6)
        assert g.number_of_edges() == 5
        assert max_degree(g) == 2

    def test_cycle(self):
        g = cycle_graph(7)
        assert g.number_of_edges() == 7
        assert all(d == 2 for _, d in g.degree())

    def test_cycle_too_small(self):
        with pytest.raises(InvalidInstance):
            cycle_graph(2)

    def test_star(self):
        g = star_graph(8)
        assert g.degree(0) == 8
        assert max_degree(g) == 8

    def test_complete(self):
        g = complete_graph(6)
        assert g.number_of_edges() == 15

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.number_of_nodes() == 12
        assert max_degree(g) <= 4

    def test_caterpillar(self):
        g = caterpillar_graph(4, 2)
        assert g.number_of_nodes() == 4 + 8
        leaves = [v for v, d in g.degree() if d == 1]
        assert len(leaves) >= 8


class TestRandomGenerators:
    def test_gnp_deterministic(self):
        a = gnp_graph(20, 0.2, seed=3)
        b = gnp_graph(20, 0.2, seed=3)
        assert set(a.edges) == set(b.edges)

    def test_gnp_seed_sensitivity(self):
        a = gnp_graph(20, 0.3, seed=1)
        b = gnp_graph(20, 0.3, seed=2)
        assert set(a.edges) != set(b.edges)

    def test_gnp_keeps_isolated_nodes(self):
        g = gnp_graph(10, 0.0, seed=0)
        assert g.number_of_nodes() == 10
        assert g.number_of_edges() == 0

    def test_regular_degrees(self):
        g = random_regular_graph(4, 20, seed=1)
        assert all(d == 4 for _, d in g.degree())

    def test_regular_invalid(self):
        with pytest.raises(InvalidInstance):
            random_regular_graph(3, 5, seed=0)  # odd product

    def test_tree_is_tree(self):
        g = random_tree(15, seed=4)
        assert nx.is_tree(g)

    def test_tree_tiny(self):
        assert random_tree(1).number_of_nodes() == 1
        assert random_tree(2).number_of_edges() == 1

    def test_power_law_degree_spread(self):
        g = power_law_graph(120, seed=1)
        degrees = sorted((d for _, d in g.degree()), reverse=True)
        assert degrees[0] > degrees[len(degrees) // 2]

    @given(st.integers(min_value=0, max_value=50))
    @settings(max_examples=15, deadline=None)
    def test_gnp_simple(self, seed):
        g = gnp_graph(12, 0.4, seed=seed)
        assert not any(u == v for u, v in g.edges)


class TestBipartite:
    def test_sides_attribute(self):
        g = random_bipartite_graph(6, 8, 0.3, seed=2)
        a = [v for v, d in g.nodes(data=True) if d["side"] == "A"]
        b = [v for v, d in g.nodes(data=True) if d["side"] == "B"]
        assert len(a) == 6 and len(b) == 8

    def test_edges_cross_sides(self):
        g = random_bipartite_graph(6, 6, 0.5, seed=1)
        for u, v in g.edges:
            assert g.nodes[u]["side"] != g.nodes[v]["side"]

    def test_bipartite_regular(self):
        g = bipartite_regular_graph(8, 3, seed=0)
        # Built from 3 perfect matchings: degree <= 3, sides regularish.
        assert max_degree(g) <= 3
        assert nx.is_bipartite(g)

    def test_bipartite_regular_invalid(self):
        with pytest.raises(InvalidInstance):
            bipartite_regular_graph(3, 5)


class TestFamilies:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_every_family_builds(self, family):
        g = FAMILIES[family](16, 0)
        assert g.number_of_nodes() >= 2
