"""Tests for the serializing layered-chain generator."""

import pytest

from repro.errors import InvalidInstance
from repro.graphs import layered_graph


class TestLayeredGraph:
    def test_shape(self):
        g = layered_graph(4, 3)
        assert g.number_of_nodes() == 12
        # Complete inter-layer bipartite blocks: 3 * (3*3) edges.
        assert g.number_of_edges() == 27

    def test_layers_are_independent_sets(self):
        g = layered_graph(5, 4)
        for u, v in g.edges:
            assert abs(g.nodes[u]["layer"] - g.nodes[v]["layer"]) == 1

    def test_layer_attribute_range(self):
        g = layered_graph(6, 2)
        layers = {d["layer"] for _, d in g.nodes(data=True)}
        assert layers == set(range(6))

    def test_sparse_variant(self):
        dense = layered_graph(4, 5, p=1.0)
        sparse = layered_graph(4, 5, seed=1, p=0.3)
        assert sparse.number_of_edges() < dense.number_of_edges()

    def test_deterministic(self):
        a = layered_graph(4, 4, seed=7, p=0.5)
        b = layered_graph(4, 4, seed=7, p=0.5)
        assert set(a.edges) == set(b.edges)

    def test_single_layer(self):
        g = layered_graph(1, 5)
        assert g.number_of_edges() == 0

    def test_invalid_parameters(self):
        with pytest.raises(InvalidInstance):
            layered_graph(0, 3)
        with pytest.raises(InvalidInstance):
            layered_graph(3, 0)
