"""Tests for the output validators."""

import pytest

from repro.errors import AlgorithmContractViolation
from repro.graphs import (
    check_coloring,
    check_independent_set,
    check_matching,
    cycle_graph,
    is_augmenting_path,
    matched_nodes,
    path_graph,
)


class TestIndependentSet:
    def test_accepts_valid(self):
        g = path_graph(5)
        check_independent_set(g, {0, 2, 4})

    def test_rejects_adjacent(self):
        g = path_graph(5)
        with pytest.raises(AlgorithmContractViolation):
            check_independent_set(g, {0, 1})

    def test_rejects_foreign_nodes(self):
        g = path_graph(3)
        with pytest.raises(AlgorithmContractViolation):
            check_independent_set(g, {0, 99})

    def test_maximality_accepted(self):
        g = path_graph(5)
        check_independent_set(g, {0, 2, 4}, require_maximal=True)

    def test_maximality_rejected(self):
        g = path_graph(5)
        with pytest.raises(AlgorithmContractViolation):
            check_independent_set(g, {0}, require_maximal=True)

    def test_empty_set_ok_on_empty_graph(self):
        import networkx as nx

        check_independent_set(nx.Graph(), set(), require_maximal=True)


class TestMatching:
    def test_accepts_valid(self):
        g = path_graph(6)
        check_matching(g, [(0, 1), (2, 3), (4, 5)])

    def test_rejects_shared_endpoint(self):
        g = path_graph(4)
        with pytest.raises(AlgorithmContractViolation):
            check_matching(g, [(0, 1), (1, 2)])

    def test_rejects_non_edge(self):
        g = path_graph(4)
        with pytest.raises(AlgorithmContractViolation):
            check_matching(g, [(0, 2)])

    def test_maximality(self):
        g = path_graph(5)
        check_matching(g, [(0, 1), (2, 3)], require_maximal=True)
        with pytest.raises(AlgorithmContractViolation):
            check_matching(g, [(1, 2)], require_maximal=True)

    def test_matched_nodes(self):
        assert matched_nodes([frozenset((1, 2)), (3, 4)]) == {1, 2, 3, 4}


class TestColoring:
    def test_accepts_proper(self):
        g = cycle_graph(4)
        check_coloring(g, {0: 0, 1: 1, 2: 0, 3: 1}, palette_size=2)

    def test_rejects_monochromatic_edge(self):
        g = path_graph(3)
        with pytest.raises(AlgorithmContractViolation):
            check_coloring(g, {0: 0, 1: 0, 2: 1})

    def test_rejects_uncolored_node(self):
        g = path_graph(3)
        with pytest.raises(AlgorithmContractViolation):
            check_coloring(g, {0: 0, 1: 1})

    def test_rejects_oversized_palette(self):
        g = path_graph(3)
        with pytest.raises(AlgorithmContractViolation):
            check_coloring(g, {0: 0, 1: 1, 2: 2}, palette_size=2)


class TestAugmentingPath:
    def test_simple_free_edge(self):
        g = path_graph(2)
        assert is_augmenting_path(g, set(), (0, 1))

    def test_length_three(self):
        g = path_graph(4)
        matching = {frozenset((1, 2))}
        assert is_augmenting_path(g, matching, (0, 1, 2, 3))

    def test_rejects_matched_endpoint(self):
        g = path_graph(4)
        matching = {frozenset((0, 1))}
        assert not is_augmenting_path(g, matching, (1, 2, 3))

    def test_rejects_wrong_alternation(self):
        g = path_graph(4)
        assert not is_augmenting_path(g, set(), (0, 1, 2, 3))

    def test_rejects_repeated_nodes(self):
        g = cycle_graph(4)
        matching = {frozenset((1, 2))}
        assert not is_augmenting_path(g, matching, (0, 1, 2, 1))

    def test_rejects_non_edges(self):
        g = path_graph(4)
        assert not is_augmenting_path(g, set(), (0, 2))
