"""Tests for weight assignment schemes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidInstance
from repro.graphs import (
    assign_edge_weights,
    assign_node_weights,
    edge_weight,
    gnp_graph,
    max_node_weight,
    node_weight,
    star_graph,
    total_edge_weight,
    total_node_weight,
)


class TestNodeWeights:
    @pytest.mark.parametrize("scheme", [
        "uniform", "constant", "geometric", "degree",
    ])
    def test_weights_in_range(self, scheme):
        g = assign_node_weights(gnp_graph(20, 0.2, seed=1), 32,
                                scheme=scheme, seed=2)
        for v in g.nodes:
            assert 1 <= node_weight(g, v) <= 32

    def test_constant_scheme(self):
        g = assign_node_weights(gnp_graph(10, 0.2, seed=1), 7,
                                scheme="constant")
        assert all(node_weight(g, v) == 7 for v in g.nodes)

    def test_deterministic(self):
        a = assign_node_weights(gnp_graph(15, 0.2, seed=1), 64, seed=9)
        b = assign_node_weights(gnp_graph(15, 0.2, seed=1), 64, seed=9)
        assert all(node_weight(a, v) == node_weight(b, v) for v in a.nodes)

    def test_star_trap_profile(self):
        """The §1.1 counterexample: hub heavier than any neighbor but
        lighter than their sum."""

        g = assign_node_weights(star_graph(6), 40, scheme="star-trap")
        hub = 0
        neighbor_weights = [node_weight(g, u) for u in g.neighbors(hub)]
        assert node_weight(g, hub) > max(neighbor_weights)
        assert node_weight(g, hub) < sum(neighbor_weights)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(InvalidInstance):
            assign_node_weights(gnp_graph(5, 0.5, seed=0), 4, scheme="nope")

    def test_invalid_max_weight(self):
        with pytest.raises(InvalidInstance):
            assign_node_weights(gnp_graph(5, 0.5, seed=0), 0)

    def test_default_weight_is_one(self):
        g = gnp_graph(5, 0.5, seed=0)
        assert node_weight(g, 0) == 1
        assert max_node_weight(g) == 1

    def test_totals(self):
        g = assign_node_weights(gnp_graph(8, 0.4, seed=3), 10, seed=4)
        assert total_node_weight(g, g.nodes) == sum(
            node_weight(g, v) for v in g.nodes
        )

    @given(st.integers(min_value=1, max_value=10**4))
    @settings(max_examples=20, deadline=None)
    def test_geometric_power_of_two_shape(self, w):
        g = assign_node_weights(gnp_graph(12, 0.2, seed=0), w,
                                scheme="geometric", seed=1)
        assert max_node_weight(g) <= w


class TestEdgeWeights:
    @pytest.mark.parametrize("scheme", ["uniform", "constant", "bimodal"])
    def test_weights_in_range(self, scheme):
        g = assign_edge_weights(gnp_graph(15, 0.3, seed=2), 16,
                                scheme=scheme, seed=3)
        for u, v in g.edges:
            assert 1 <= edge_weight(g, u, v) <= 16

    def test_bimodal_has_both_classes(self):
        g = assign_edge_weights(gnp_graph(30, 0.3, seed=2), 100,
                                scheme="bimodal", seed=3)
        weights = {edge_weight(g, u, v) for u, v in g.edges}
        assert weights == {1, 100}

    def test_unknown_scheme_rejected(self):
        with pytest.raises(InvalidInstance):
            assign_edge_weights(gnp_graph(5, 0.5, seed=0), 4, scheme="nope")

    def test_total_edge_weight(self):
        g = assign_edge_weights(gnp_graph(8, 0.5, seed=1), 5, seed=2)
        assert total_edge_weight(g, g.edges) == sum(
            edge_weight(g, u, v) for u, v in g.edges
        )
