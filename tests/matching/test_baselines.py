"""Tests for sequential matching baselines and exact oracles."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import (
    assign_edge_weights,
    check_matching,
    cycle_graph,
    gnp_graph,
    path_graph,
)
from repro.matching import (
    exact_max_cardinality_matching,
    exact_max_weight_matching,
    greedy_maximal_matching,
    greedy_weighted_matching,
    matching_weight,
    optimum_cardinality,
    optimum_weight,
)


class TestGreedyWeighted:
    def test_valid_matching(self, edge_weighted_graph):
        m = greedy_weighted_matching(edge_weighted_graph)
        check_matching(edge_weighted_graph, [tuple(e) for e in m])

    @pytest.mark.parametrize("seed", range(5))
    def test_half_approximation(self, seed):
        g = assign_edge_weights(gnp_graph(16, 0.3, seed=seed), 20,
                                seed=seed + 1)
        greedy = matching_weight(g, greedy_weighted_matching(g))
        assert 2 * greedy >= optimum_weight(g)

    def test_prefers_heavy_edge(self):
        g = path_graph(3)
        nx.set_edge_attributes(g, {(0, 1): 1, (1, 2): 10}, "weight")
        m = greedy_weighted_matching(g)
        assert m == {frozenset((1, 2))}


class TestGreedyMaximal:
    def test_maximal(self, small_graph):
        m = greedy_maximal_matching(small_graph)
        check_matching(small_graph, [tuple(e) for e in m],
                       require_maximal=True)

    def test_cardinality_half(self):
        for seed in range(4):
            g = gnp_graph(18, 0.25, seed=seed)
            m = greedy_maximal_matching(g)
            assert 2 * len(m) >= optimum_cardinality(g)


class TestExactOracles:
    def test_weight_at_least_cardinality_weight(self, edge_weighted_graph):
        w = optimum_weight(edge_weighted_graph)
        c = optimum_cardinality(edge_weighted_graph)
        assert w >= c  # weights are >= 1

    def test_path_exact(self):
        g = path_graph(4)
        assert optimum_cardinality(g) == 2

    def test_even_cycle(self):
        assert optimum_cardinality(cycle_graph(8)) == 4

    def test_odd_cycle(self):
        assert optimum_cardinality(cycle_graph(7)) == 3

    def test_weighted_prefers_heavy(self):
        g = path_graph(3)
        nx.set_edge_attributes(g, {(0, 1): 5, (1, 2): 2}, "weight")
        m = exact_max_weight_matching(g)
        assert m == {frozenset((0, 1))}

    def test_exact_valid(self, edge_weighted_graph):
        m = exact_max_weight_matching(edge_weighted_graph)
        check_matching(edge_weighted_graph, [tuple(e) for e in m])
        m2 = exact_max_cardinality_matching(edge_weighted_graph)
        check_matching(edge_weighted_graph, [tuple(e) for e in m2])

    @given(st.integers(min_value=0, max_value=20))
    @settings(max_examples=10, deadline=None)
    def test_cardinality_dominates_all_matchings(self, seed):
        g = gnp_graph(12, 0.3, seed=seed)
        opt = optimum_cardinality(g)
        greedy = greedy_maximal_matching(g)
        assert len(greedy) <= opt
