"""Tests for the sequential Hopcroft–Karp implementation."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidInstance
from repro.graphs import (
    bipartite_regular_graph,
    check_matching,
    path_graph,
    random_bipartite_graph,
)
from repro.matching import bipartite_sides, hopcroft_karp, optimum_cardinality


class TestBipartiteSides:
    def test_uses_side_attribute(self, bipartite_graph):
        a, b = bipartite_sides(bipartite_graph)
        assert len(a) == 15 and len(b) == 15

    def test_falls_back_to_two_coloring(self):
        g = path_graph(4)
        a, b = bipartite_sides(g)
        assert a | b == set(g.nodes)
        for u, v in g.edges:
            assert (u in a) != (v in a)

    def test_rejects_odd_cycle(self):
        g = nx.cycle_graph(5)
        with pytest.raises(InvalidInstance):
            bipartite_sides(g)

    def test_rejects_partial_side_attributes(self):
        g = nx.Graph()
        g.add_node(0, side="A")
        g.add_node(1)
        g.add_edge(0, 1)
        with pytest.raises(InvalidInstance):
            bipartite_sides(g)


class TestHopcroftKarp:
    def test_valid_matching(self, bipartite_graph):
        m = hopcroft_karp(bipartite_graph)
        check_matching(bipartite_graph, [tuple(e) for e in m])

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_networkx_optimum(self, seed):
        g = random_bipartite_graph(12, 14, 0.25, seed=seed)
        assert len(hopcroft_karp(g)) == optimum_cardinality(g)

    def test_perfect_matching_on_regular(self):
        g = bipartite_regular_graph(10, 3, seed=1)
        assert len(hopcroft_karp(g)) == 10  # Hall: regular bipartite

    def test_empty_graph(self):
        g = nx.Graph()
        g.add_node(0, side="A")
        g.add_node(1, side="B")
        assert hopcroft_karp(g) == set()

    @given(st.integers(min_value=0, max_value=30))
    @settings(max_examples=12, deadline=None)
    def test_property_optimality(self, seed):
        g = random_bipartite_graph(8, 9, 0.3, seed=seed)
        assert len(hopcroft_karp(g)) == optimum_cardinality(g)
