"""Tests for the Israeli–Itai-style distributed maximal matching."""

import pytest

from repro.congest import SynchronousNetwork
from repro.graphs import check_matching, complete_graph, gnp_graph, path_graph
from repro.matching import israeli_itai_matching


class TestIsraeliItai:
    def test_valid_and_maximal(self, topology):
        matching, _ = israeli_itai_matching(topology, seed=1)
        check_matching(topology, [tuple(e) for e in matching],
                       require_maximal=True)

    @pytest.mark.parametrize("seed", range(6))
    def test_many_seeds(self, seed):
        g = gnp_graph(30, 0.2, seed=seed)
        matching, _ = israeli_itai_matching(g, seed=seed)
        check_matching(g, [tuple(e) for e in matching],
                       require_maximal=True)

    def test_complete_graph_matches_half(self):
        g = complete_graph(10)
        matching, _ = israeli_itai_matching(g, seed=2)
        assert len(matching) == 5

    def test_rounds_scale_logarithmically(self):
        _, small_rounds = israeli_itai_matching(
            gnp_graph(16, 0.3, seed=1), seed=1
        )
        _, big_rounds = israeli_itai_matching(
            gnp_graph(200, 0.03, seed=1), seed=1
        )
        assert big_rounds <= 8 * max(3, small_rounds)

    def test_outputs_are_symmetric(self):
        g = path_graph(6)
        net = SynchronousNetwork(g, seed=3)
        matching, _ = israeli_itai_matching(g, network=net)
        for edge in matching:
            assert len(edge) == 2

    def test_deterministic_per_seed(self):
        g = gnp_graph(25, 0.2, seed=4)
        a, _ = israeli_itai_matching(g, seed=7)
        b, _ = israeli_itai_matching(g, seed=7)
        assert a == b
