"""Oracle sanity: weight-optimal and cardinality-optimal matchings can
genuinely differ; the library exposes both correctly."""

import networkx as nx

from repro.matching import (
    exact_max_cardinality_matching,
    exact_max_weight_matching,
    matching_weight,
    optimum_cardinality,
    optimum_weight,
)


def separation_instance():
    """Path a-b-c-d where the middle edge outweighs both side edges:
    max-weight takes {bc} (weight 10), max-cardinality takes
    {ab, cd} (2 edges, weight 2)."""

    g = nx.Graph()
    g.add_edge("a", "b", weight=1)
    g.add_edge("b", "c", weight=10)
    g.add_edge("c", "d", weight=1)
    return g


class TestSeparation:
    def test_weight_oracle_prefers_heavy_edge(self):
        g = separation_instance()
        m = exact_max_weight_matching(g)
        assert m == {frozenset(("b", "c"))}
        assert optimum_weight(g) == 10

    def test_cardinality_oracle_prefers_two_edges(self):
        g = separation_instance()
        m = exact_max_cardinality_matching(g)
        assert len(m) == 2
        assert optimum_cardinality(g) == 2

    def test_weight_of_cardinality_solution_is_smaller(self):
        g = separation_instance()
        cardinality_weight = matching_weight(
            g, exact_max_cardinality_matching(g)
        )
        assert cardinality_weight < optimum_weight(g)
