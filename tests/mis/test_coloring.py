"""Tests for the deterministic distributed coloring pipeline."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AlgorithmContractViolation
from repro.graphs import (
    check_coloring,
    empty_graph,
    gnp_graph,
    max_degree,
    path_graph,
    random_regular_graph,
    star_graph,
)
from repro.mis import (
    delta_plus_one_coloring,
    greedy_coloring,
    linial_coloring,
    linial_step,
    reduce_palette,
)
from repro.mis.coloring import _linial_parameters


class TestGreedyColoring:
    def test_proper_and_within_palette(self, topology):
        colors = greedy_coloring(topology)
        check_coloring(topology, colors,
                       palette_size=max_degree(topology) + 1)

    def test_path_uses_two_colors(self):
        colors = greedy_coloring(path_graph(10))
        assert len(set(colors.values())) <= 2


class TestLinialStep:
    def test_single_step_reduces_and_stays_proper(self):
        g = gnp_graph(60, 0.08, seed=1)
        colors = {v: i for i, v in enumerate(sorted(g.nodes))}
        q, k = _linial_parameters(len(colors), max_degree(g))
        new = linial_step(g, colors, q, k)
        check_coloring(g, new)
        assert max(new.values()) < q * q

    def test_parameters_satisfy_linial_condition(self):
        for m, delta in [(100, 4), (1000, 8), (50, 3)]:
            q, k = _linial_parameters(m, delta)
            assert q > delta * (k - 1)
            assert q ** k >= m


class TestLinialColoring:
    @pytest.mark.parametrize("n,p", [(30, 0.1), (80, 0.05), (50, 0.12)])
    def test_proper_output(self, n, p):
        g = gnp_graph(n, p, seed=2)
        colors, rounds, bound = linial_coloring(g)
        check_coloring(g, colors)
        assert max(colors.values(), default=0) < bound

    def test_rounds_are_log_star_ish(self):
        g = gnp_graph(200, 0.02, seed=3)
        _, rounds, _ = linial_coloring(g)
        assert rounds <= 6  # log* 200 plus slack


class TestReducePalette:
    def test_reduction_to_delta_plus_one(self):
        g = gnp_graph(40, 0.1, seed=4)
        colors = {v: i for i, v in enumerate(sorted(g.nodes))}
        target = max_degree(g) + 1
        reduced, rounds = reduce_palette(g, colors, target)
        check_coloring(g, reduced, palette_size=target)
        assert rounds == 40 - target

    def test_cannot_go_below_delta_plus_one(self):
        g = star_graph(5)
        colors = greedy_coloring(g)
        with pytest.raises(AlgorithmContractViolation):
            reduce_palette(g, colors, 2)


class TestFullPipeline:
    def test_proper_delta_plus_one(self, topology):
        result = delta_plus_one_coloring(topology)
        check_coloring(topology, result.colors, palette_size=result.palette)
        assert result.palette == max_degree(topology) + 1

    def test_deterministic(self):
        g = gnp_graph(35, 0.12, seed=5)
        a = delta_plus_one_coloring(g)
        b = delta_plus_one_coloring(g)
        assert a.colors == b.colors

    def test_round_accounting_fields(self):
        g = random_regular_graph(4, 30, seed=6)
        result = delta_plus_one_coloring(g)
        assert result.measured_rounds == (
            result.linial_rounds + result.reduction_rounds
        )
        assert result.accounted_bek14_rounds >= max_degree(g)

    def test_empty_graph(self):
        result = delta_plus_one_coloring(empty_graph(4))
        assert set(result.colors.values()) == {0}

    @given(st.integers(min_value=0, max_value=30))
    @settings(max_examples=10, deadline=None)
    def test_property_random(self, seed):
        g = gnp_graph(20, 0.2, seed=seed)
        result = delta_plus_one_coloring(g)
        check_coloring(g, result.colors, palette_size=result.palette)
