"""Tests for the Discussion-section almost-maximal IS and composite MIS."""

import pytest

from repro.graphs import (
    check_independent_set,
    complete_graph,
    empty_graph,
    gnp_graph,
    random_regular_graph,
)
from repro.mis import (
    almost_maximal_independent_set,
    discussion_failure_probability,
    nmis_plus_luby_mis,
)


class TestFailureProbability:
    def test_decreases_with_delta(self):
        assert discussion_failure_probability(2**20) < \
            discussion_failure_probability(8)

    def test_gamma_range_enforced(self):
        with pytest.raises(ValueError):
            discussion_failure_probability(16, gamma=1.5)

    def test_smaller_gamma_smaller_failure(self):
        # 1-γ larger → exponent larger → failure smaller.
        assert discussion_failure_probability(2**16, gamma=0.1) < \
            discussion_failure_probability(2**16, gamma=0.9)


class TestAlmostMaximal:
    def test_independence(self, small_graph):
        result = almost_maximal_independent_set(small_graph, seed=1)
        check_independent_set(small_graph, result.independent_set)

    def test_residual_rate_within_budgeted_failure(self):
        g = random_regular_graph(6, 80, seed=2)
        residuals = 0
        nodes = 0
        for seed in range(5):
            result = almost_maximal_independent_set(g, seed=seed)
            residuals += len(result.residual)
            nodes += g.number_of_nodes()
        # The budget targets 2^{-log^{0.7} Δ} ≈ 0.2 for Δ=6; allow 2x.
        assert residuals / nodes <= 2 * result.failure_probability + 0.05

    def test_reports_failure_probability(self, small_graph):
        result = almost_maximal_independent_set(small_graph, gamma=0.5)
        assert 0 < result.failure_probability < 1


class TestCompositeMis:
    def test_true_mis(self, topology):
        mis, rounds = nmis_plus_luby_mis(topology, seed=3)
        check_independent_set(topology, mis, require_maximal=True)
        assert rounds > 0

    @pytest.mark.parametrize("seed", range(5))
    def test_random_graphs(self, seed):
        g = gnp_graph(35, 0.15, seed=seed)
        mis, _ = nmis_plus_luby_mis(g, seed=seed)
        check_independent_set(g, mis, require_maximal=True)

    def test_complete_graph(self):
        mis, _ = nmis_plus_luby_mis(complete_graph(12), seed=4)
        assert len(mis) == 1

    def test_isolated_nodes(self):
        mis, _ = nmis_plus_luby_mis(empty_graph(7), seed=5)
        assert mis == set(range(7))

    def test_short_nmis_stage_still_yields_mis(self):
        """Even a 1-iteration NMIS stage must produce a valid MIS after
        cleanup (the cleanup bears the load)."""

        g = gnp_graph(30, 0.2, seed=6)
        mis, _ = nmis_plus_luby_mis(g, nmis_iterations=1, seed=7)
        check_independent_set(g, mis, require_maximal=True)
