"""Tests for Ghaffari's nearly-maximal independent set."""

import pytest

from repro.graphs import check_independent_set, gnp_graph, random_regular_graph
from repro.mis import GoldenRoundStats, nearly_maximal_is


class TestNearlyMaximalIS:
    def test_output_is_independent(self, small_graph):
        independent, residual, _ = nearly_maximal_is(
            small_graph, iterations=25, k=2, seed=1
        )
        check_independent_set(small_graph, independent)

    def test_partition_of_nodes(self, small_graph):
        """Every node is in the set, dominated, or residual."""

        independent, residual, _ = nearly_maximal_is(
            small_graph, iterations=25, k=2, seed=1
        )
        dominated = set(small_graph.nodes) - independent - residual
        for v in dominated:
            assert any(u in independent for u in small_graph.neighbors(v))

    def test_residual_nodes_have_no_is_neighbor(self, small_graph):
        independent, residual, _ = nearly_maximal_is(
            small_graph, iterations=25, k=2, seed=1
        )
        for v in residual:
            assert v not in independent
            assert not any(
                u in independent for u in small_graph.neighbors(v)
            )

    def test_more_iterations_fewer_residuals(self):
        g = random_regular_graph(6, 60, seed=2)
        few = sum(
            len(nearly_maximal_is(g, iterations=2, k=2, seed=s)[1])
            for s in range(5)
        )
        many = sum(
            len(nearly_maximal_is(g, iterations=40, k=2, seed=s)[1])
            for s in range(5)
        )
        assert many <= few

    def test_long_run_is_maximal_usually(self):
        g = gnp_graph(30, 0.2, seed=3)
        independent, residual, _ = nearly_maximal_is(
            g, iterations=60, k=2, seed=4
        )
        assert not residual
        check_independent_set(g, independent, require_maximal=True)

    def test_rounds_are_two_per_iteration(self):
        g = gnp_graph(20, 0.2, seed=5)
        _, _, rounds = nearly_maximal_is(g, iterations=10, k=2, seed=6)
        assert rounds <= 2 * 10 + 4

    def test_k_must_be_at_least_two(self):
        g = gnp_graph(5, 0.5, seed=0)
        with pytest.raises(ValueError):
            nearly_maximal_is(g, iterations=5, k=1.5)

    def test_golden_round_stats_collected(self):
        g = gnp_graph(25, 0.25, seed=7)
        stats = GoldenRoundStats()
        nearly_maximal_is(g, iterations=15, k=2, seed=8, stats=stats)
        assert stats.type1 or stats.type2

    def test_larger_k_changes_dynamics(self):
        g = random_regular_graph(4, 40, seed=9)
        a, _, _ = nearly_maximal_is(g, iterations=30, k=2, seed=10)
        b, _, _ = nearly_maximal_is(g, iterations=30, k=4, seed=10)
        check_independent_set(g, a)
        check_independent_set(g, b)
