"""Tests for greedy MIS/MWIS baselines and the exact MWIS oracle."""

import itertools

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import (
    assign_node_weights,
    check_independent_set,
    complete_graph,
    cycle_graph,
    gnp_graph,
    max_degree,
    path_graph,
)
from repro.mis import exact_mwis, greedy_mis, greedy_mwis, mwis_weight


def brute_force_mwis_weight(graph) -> int:
    """Reference oracle by exhaustive search (use only for n <= 16)."""

    nodes = list(graph.nodes)
    best = 0
    for r in range(len(nodes) + 1):
        for subset in itertools.combinations(nodes, r):
            chosen = set(subset)
            if any(v in chosen for u in chosen
                   for v in graph.neighbors(u)):
                continue
            best = max(best, mwis_weight(graph, chosen))
    return best


class TestGreedyMis:
    def test_independent_and_maximal(self, topology):
        mis = greedy_mis(topology)
        check_independent_set(topology, mis, require_maximal=True)

    def test_path_takes_alternating(self):
        mis = greedy_mis(path_graph(7))
        assert len(mis) == 4

    def test_hr97_bound(self):
        """Greedy is a (Δ+2)/3-approximation for unweighted MaxIS."""

        for seed in range(4):
            g = gnp_graph(14, 0.25, seed=seed)
            greedy_size = len(greedy_mis(g))
            opt_size = len(exact_mwis(g))
            bound = (max_degree(g) + 2) / 3
            assert greedy_size * bound >= opt_size


class TestGreedyMwis:
    def test_independent(self, weighted_graph):
        chosen = greedy_mwis(weighted_graph)
        check_independent_set(weighted_graph, chosen)

    def test_prefers_heavy_isolated_nodes(self):
        g = path_graph(3)
        nx.set_node_attributes(g, {0: 1, 1: 100, 2: 1}, "weight")
        chosen = greedy_mwis(g)
        assert 1 in chosen


class TestExactMwis:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_brute_force(self, seed):
        g = assign_node_weights(gnp_graph(12, 0.3, seed=seed), 10,
                                seed=seed + 1)
        exact = exact_mwis(g)
        check_independent_set(g, exact)
        assert mwis_weight(g, exact) == brute_force_mwis_weight(g)

    def test_complete_graph_picks_heaviest(self):
        g = complete_graph(6)
        nx.set_node_attributes(
            g, {v: v + 1 for v in g.nodes}, "weight"
        )
        assert exact_mwis(g) == {5}

    def test_even_cycle_unweighted(self):
        assert len(exact_mwis(cycle_graph(8))) == 4

    def test_odd_cycle_unweighted(self):
        assert len(exact_mwis(cycle_graph(7))) == 3

    def test_exact_at_least_greedy(self, weighted_graph):
        exact = mwis_weight(weighted_graph, exact_mwis(weighted_graph))
        greedy = mwis_weight(weighted_graph, greedy_mwis(weighted_graph))
        assert exact >= greedy

    @given(st.integers(min_value=0, max_value=25))
    @settings(max_examples=10, deadline=None)
    def test_property_small_graphs(self, seed):
        g = assign_node_weights(gnp_graph(10, 0.35, seed=seed), 8,
                                seed=seed)
        exact = exact_mwis(g)
        check_independent_set(g, exact)
        assert mwis_weight(g, exact) == brute_force_mwis_weight(g)
