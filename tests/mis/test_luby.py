"""Tests for Luby's MIS node program."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.congest import SynchronousNetwork
from repro.graphs import (
    check_independent_set,
    complete_graph,
    empty_graph,
    gnp_graph,
    path_graph,
    star_graph,
)
from repro.mis import luby_mis


class TestLubyCorrectness:
    def test_independence_and_maximality(self, topology):
        mis, _ = luby_mis(topology, seed=1)
        check_independent_set(topology, mis, require_maximal=True)

    @pytest.mark.parametrize("seed", range(5))
    def test_many_seeds(self, seed):
        g = gnp_graph(40, 0.15, seed=seed)
        mis, _ = luby_mis(g, seed=seed)
        check_independent_set(g, mis, require_maximal=True)

    def test_complete_graph_single_winner(self):
        mis, _ = luby_mis(complete_graph(10), seed=2)
        assert len(mis) == 1

    def test_isolated_nodes_always_join(self):
        g = empty_graph(6)
        mis, rounds = luby_mis(g, seed=0)
        assert mis == set(range(6))
        assert rounds <= 2

    def test_star_center_or_all_leaves(self):
        mis, _ = luby_mis(star_graph(7), seed=3)
        assert mis == {0} or mis == set(range(1, 8))

    @given(st.integers(min_value=0, max_value=40))
    @settings(max_examples=15, deadline=None)
    def test_property_random_graphs(self, seed):
        g = gnp_graph(18, 0.25, seed=seed)
        mis, _ = luby_mis(g, seed=seed + 100)
        check_independent_set(g, mis, require_maximal=True)


class TestLubyRounds:
    def test_rounds_grow_slowly(self):
        """O(log n) phases: going 16 -> 256 nodes should not blow up."""

        small, small_rounds = luby_mis(gnp_graph(16, 0.3, seed=1), seed=1)
        big, big_rounds = luby_mis(gnp_graph(256, 0.02, seed=1), seed=1)
        assert big_rounds <= 8 * max(1, small_rounds)

    def test_runs_on_shared_network_with_participants(self):
        g = path_graph(8)
        net = SynchronousNetwork(g, seed=4)
        participants = {0, 1, 2, 3}
        mis, _ = luby_mis(g, network=net, participants=participants)
        assert mis <= participants
        check_independent_set(g.subgraph(participants), mis,
                              require_maximal=True)
        assert net.metrics.rounds > 0

    def test_deterministic_given_seed(self):
        g = gnp_graph(30, 0.2, seed=5)
        a, _ = luby_mis(g, seed=9)
        b, _ = luby_mis(g, seed=9)
        assert a == b
