"""The ``mpc`` execution model through the facade: exact parity with
the default-model ``solve()``, sparsification on dense rounds, and the
registry surface."""

from __future__ import annotations

import pytest

from repro.api import MPC, Instance, registry_as_json, solve
from repro.graphs import assign_node_weights, complete_graph, gnp_graph

MPC_ALGORITHMS = ("matching-proposal", "maxis-greedy")


def _weighted_gnp(n, p, seed):
    graph = gnp_graph(n, p, seed=seed)
    assign_node_weights(graph, max_weight=8, seed=seed + 1)
    return graph


class TestObjectiveParity:
    @pytest.mark.parametrize("algorithm", MPC_ALGORITHMS)
    def test_mpc_solve_matches_default_model(self, algorithm):
        graph = _weighted_gnp(40, 0.15, seed=2)
        base = solve(Instance(graph, seed=3, eps=0.5), algorithm)
        mpc = solve(
            Instance(graph, seed=3, eps=0.5, model="mpc", machines=7),
            algorithm,
        )
        assert mpc.objective == base.objective
        assert mpc.solution == base.solution
        summary = mpc.extras["mpc"]
        assert summary["machines"] == 7
        assert summary["sublinear_ok"]
        assert summary["max_load"] <= summary["capacity"]

    def test_proposal_rounds_match_object_simulator(self):
        graph = _weighted_gnp(40, 0.12, seed=5)
        base = solve(Instance(graph, seed=1, eps=0.5),
                     "matching-proposal")
        mpc = solve(Instance(graph, seed=1, eps=0.5, model="mpc"),
                    "matching-proposal")
        assert mpc.rounds == base.rounds

    def test_sparsify_off_still_passes_on_sparse_graphs(self):
        graph = _weighted_gnp(36, 0.1, seed=4)
        mpc = solve(Instance(graph, seed=2, model="mpc"),
                    "maxis-greedy", sparsify=False)
        base = solve(Instance(graph, seed=2), "maxis-greedy")
        assert mpc.objective == base.objective
        assert mpc.extras["mpc"]["sparsify"] is None


class TestAdaptiveSparsification:
    def test_dense_graph_passes_only_via_sparsification(self):
        """On a complete graph the greedy exclusion broadcast is ~n^2
        messages; the run must engage the dropper, record that the raw
        round would have violated, and still produce the exact central
        greedy answer."""

        graph = complete_graph(40)
        base = solve(Instance(graph, seed=0), "maxis-greedy")
        mpc = solve(Instance(graph, seed=0, model="mpc"), "maxis-greedy")
        assert mpc.objective == base.objective
        assert mpc.solution == base.solution
        summary = mpc.extras["mpc"]
        assert summary["sublinear_ok"]
        stats = summary["sparsify"]
        assert stats["triggers"] >= 1
        assert stats["would_violate_without"]
        assert stats["dropped_messages"] > 0
        assert summary["dropped_messages"] == stats["dropped_messages"]


class TestRegistrySurface:
    def test_info_lists_mpc_model_for_ported_entries(self):
        inventory = {
            entry["name"]: entry for entry in registry_as_json()
        }
        for name in MPC_ALGORITHMS:
            assert MPC in inventory[name]["models"]
        # Non-ported entries keep their historical model list.
        assert MPC not in inventory["maxis-layers"]["models"]

    def test_instance_validates_topology(self):
        graph = gnp_graph(10, 0.2, seed=0)
        with pytest.raises(Exception):
            Instance(graph, model="mpc", machines=0)
