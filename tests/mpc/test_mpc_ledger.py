"""Machine-ledger invariants: bit parity with CONGEST, hard capacity."""

from __future__ import annotations

import pytest

from repro.congest import make_network
from repro.core import bipartite_proposal_matching
from repro.errors import MPCCapacityError
from repro.graphs import complete_graph, gnp_graph, random_bipartite_graph
from repro.mpc import (
    MPCNetwork,
    aggregate_ledgers,
    mpc_greedy_mis,
    run_bipartite_proposal,
)


def _bipartite():
    graph = random_bipartite_graph(10, 10, 0.3, seed=1)
    left = {v for v, data in graph.nodes(data=True)
            if data["side"] == "A"}
    return graph, left


class TestBitSumInvariant:
    def test_machine_bits_sum_to_congest_bits_at_one_node_per_machine(
            self):
        """With machines == n every message crosses machines, so the
        per-machine ledgers must add up to exactly the CONGEST
        simulator's global NetworkMetrics for the same protocol run."""

        graph, left = _bipartite()
        right = set(graph.nodes) - left
        seed = 7

        congest = make_network(graph, seed=seed)
        result = bipartite_proposal_matching(
            graph, left, right, seed=seed, network=congest)

        mpc = MPCNetwork(graph, machines=graph.number_of_nodes(),
                         capacity_factor=1e9, sparsify=False)
        matching, unlucky, rounds = run_bipartite_proposal(
            mpc, graph, left, seed=seed)

        assert matching == result.matching
        assert unlucky == result.unlucky
        assert rounds == result.rounds
        totals = aggregate_ledgers([m.ledger for m in mpc.fleet])
        assert totals["bits_sent"] == congest.metrics.bits
        assert totals["bits_sent"] == totals["bits_received"]
        assert totals["messages_sent"] == congest.metrics.messages

    def test_local_messages_are_free(self):
        """With one machine nothing crosses: loads and bits stay zero
        while the protocol still runs to the same matching."""

        graph, left = _bipartite()
        right = set(graph.nodes) - left
        single = MPCNetwork(graph, machines=1, capacity_factor=1e9)
        matching, _, _ = run_bipartite_proposal(single, graph, left,
                                                seed=7)
        reference = bipartite_proposal_matching(graph, left, right,
                                                seed=7)
        assert matching == reference.matching
        summary = single.summary()
        assert summary["bits_sent"] == 0
        assert summary["max_load"] == 0
        assert summary["local_messages"] > 0


class TestCapacityError:
    def test_violation_raises_at_documented_threshold(self):
        """The hard check is deterministic: a complete-graph greedy
        round moves ~n^2 messages, so with sparsification off and
        capacity pinned below that the shuffle must raise — with the
        violating machine, round, load and capacity attached."""

        graph = complete_graph(24)
        network = MPCNetwork(graph, machines=6, delta=0.5,
                             capacity_factor=1.0, sparsify=False)
        with pytest.raises(MPCCapacityError) as excinfo:
            mpc_greedy_mis(graph, network=network)
        err = excinfo.value
        assert 0 <= err.machine < 6
        assert err.capacity == network.capacity
        assert err.load > err.capacity
        assert err.round_index >= 0
        assert str(err.capacity) in str(err)

    def test_same_configuration_raises_identically(self):
        def observe():
            graph = complete_graph(24)
            network = MPCNetwork(graph, machines=6, delta=0.5,
                                 capacity_factor=1.0, sparsify=False)
            try:
                mpc_greedy_mis(graph, network=network)
            except MPCCapacityError as exc:
                return (exc.machine, exc.round_index, exc.load,
                        exc.capacity)
            raise AssertionError("expected MPCCapacityError")

        assert observe() == observe()


class TestLedgerAccounting:
    def test_rounds_and_peaks_recorded_per_machine(self):
        graph = gnp_graph(36, 0.15, seed=2)
        network = MPCNetwork(graph, machines=6)
        mpc_greedy_mis(graph, network=network)
        summary = network.summary()
        assert summary["rounds"] == network.round > 0
        assert len(summary["peak_loads"]) == 6
        assert summary["max_load"] == max(summary["peak_loads"])
        assert summary["sublinear_ok"]
        for ledger in network.ledgers():
            assert ledger["rounds"] <= summary["rounds"]
            assert ledger["peak_memory_words"] > 0
