"""Topology defaults, node partitioning, and machine construction."""

from __future__ import annotations

import math

import pytest

from repro.graphs import gnp_graph
from repro.mpc import (
    MPCNetwork,
    build_machines,
    default_topology,
    partition_nodes,
)


class TestDefaultTopology:
    def test_defaults_to_sqrt_n_memory(self):
        machines, delta = default_topology(100, None, None)
        assert delta == 0.5
        assert machines == math.ceil(100 ** 0.5)

    def test_machines_derived_from_delta(self):
        machines, delta = default_topology(256, None, 0.75)
        assert delta == 0.75
        assert machines == math.ceil(256 ** 0.25)

    def test_explicit_values_pass_through(self):
        assert default_topology(100, 7, 0.6) == (7, 0.6)


class TestPartitionNodes:
    def test_deterministic_and_balanced(self):
        nodes = list(range(40))
        assignment = partition_nodes(nodes, 8)
        again = partition_nodes(reversed(nodes), 8)
        assert assignment == again
        sizes = [sum(1 for m in assignment.values() if m == i)
                 for i in range(8)]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == 40

    def test_every_machine_index_in_range(self):
        assignment = partition_nodes(range(11), 3)
        assert set(assignment.values()) <= {0, 1, 2}


class TestBuildMachines:
    def test_adjacency_covers_every_edge_endpoint(self):
        graph = gnp_graph(30, 0.2, seed=4)
        assignment = partition_nodes(graph.nodes, 5)
        fleet = build_machines(graph, assignment, 5)
        assert [m.index for m in fleet] == list(range(5))
        hosted = {v for m in fleet for v in m.nodes}
        assert hosted == set(graph.nodes)
        for machine in fleet:
            for v in machine.nodes:
                assert set(machine.adjacency[v]) == set(graph.neighbors(v))

    def test_base_memory_counts_nodes_and_adjacency(self):
        graph = gnp_graph(20, 0.3, seed=1)
        network = MPCNetwork(graph, machines=4)
        total_adj = sum(
            len(machine.adjacency[v])
            for machine in network.fleet for v in machine.nodes
        )
        assert total_adj == 2 * graph.number_of_edges()
        for machine in network.fleet:
            assert machine.base_memory_words() == len(machine.nodes) + sum(
                len(machine.adjacency[v]) for v in machine.nodes
            )


class TestTopologyValidation:
    def test_capacity_formula(self):
        graph = gnp_graph(64, 0.1, seed=0)
        network = MPCNetwork(graph, delta=0.5, capacity_factor=8.0)
        assert network.capacity == math.ceil(8.0 * 64 ** 0.5)

    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_tiny_graphs_get_sane_topology(self, n):
        graph = gnp_graph(n, 0.5, seed=0)
        network = MPCNetwork(graph)
        assert network.machines >= 1
        assert network.capacity >= 1
