"""LRU result-cache semantics: bounds, eviction order, counters."""

from __future__ import annotations

import threading

import pytest

from repro.serve.cache import ResultCache


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache(maxsize=4)
        assert cache.get("a") is None
        cache.put("a", {"value": 1})
        assert cache.get("a") == {"value": 1}
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate() == 0.5

    def test_lru_eviction_order(self):
        cache = ResultCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a" → "b" is now LRU
        cache.put("c", 3)
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.evictions == 1

    def test_put_refreshes_existing_key(self):
        cache = ResultCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, not insert: no eviction
        assert cache.evictions == 0
        assert cache.get("a") == 10
        assert len(cache) == 2

    def test_zero_capacity_never_stores(self):
        cache = ResultCache(maxsize=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(maxsize=-1)

    def test_hit_rate_before_any_lookup(self):
        assert ResultCache().hit_rate() == 0.0

    def test_stats_shape(self):
        cache = ResultCache(maxsize=3)
        cache.put("a", 1)
        cache.get("a")
        cache.get("zzz")
        stats = cache.stats()
        assert stats == {
            "size": 1, "maxsize": 3, "hits": 1, "misses": 1,
            "evictions": 0, "hit_rate": 0.5,
        }

    def test_concurrent_access_stays_bounded(self):
        cache = ResultCache(maxsize=8)

        def worker(base):
            for i in range(200):
                cache.put(f"k{base}-{i % 16}", i)
                cache.get(f"k{base}-{i % 16}")

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(cache) <= 8
        assert cache.hits + cache.misses == 4 * 200
