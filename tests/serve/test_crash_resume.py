"""The headline guarantee, end to end: ``kill -9`` the daemon
mid-solve, restart it on the same ``--state-dir``, and the finished
job is byte-identical to a never-interrupted run.

Uses ``matching-proposal``, which journals a genuine resume payload at
every repetition boundary, so the restarted daemon really warm-starts
from mid-run state rather than re-running from scratch.
"""

from __future__ import annotations

import http.client
import json
import os
import re
import select
import signal
import subprocess
import sys
import time
from dataclasses import replace

import pytest

from repro.api import random_instance, solve
from repro.serve.protocol import result_record

JOB_BODY = {
    "workload": {"problem": "matching", "nodes": 40, "seed": 5},
    "algorithm": "matching-proposal",
    "max_rounds": 1000,
}
#: Sleep per checkpoint inside the daemon — widens the window between
#: "3 checkpoints journaled" and "job done" so the kill always lands
#: mid-solve.
PHASE_DELAY = 0.25

READY_LINE = re.compile(
    r"repro-serve listening on http://[^:]+:(\d+) "
    r"\(recovered (\d+), requeued (\d+)\)")


def _spawn(state_dir):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", "1", "--state-dir", str(state_dir),
         "--phase-delay", str(PHASE_DELAY)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env, cwd=os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))),
    )


def _await_ready(proc, timeout=30.0):
    """Read stdout until the ready line; return (port, recovered,
    requeued)."""

    deadline = time.monotonic() + timeout
    buffer = ""
    os.set_blocking(proc.stdout.fileno(), False)
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise AssertionError(
                f"daemon exited early: {buffer + (proc.stdout.read() or '')}")
        ready, _, _ = select.select([proc.stdout], [], [], 0.1)
        if not ready:
            continue
        chunk = proc.stdout.read()
        if chunk:
            buffer += chunk
        match = READY_LINE.search(buffer)
        if match:
            return (int(match.group(1)), int(match.group(2)),
                    int(match.group(3)))
    raise AssertionError(f"no ready line within {timeout}s: {buffer!r}")


def _request(port, method, path, body=None, timeout=30):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        conn.request(method, path, body=payload)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def _poll(port, job_id, predicate, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _status, record = _request(port, "GET", f"/jobs/{job_id}")
        if predicate(record):
            return record
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never satisfied the predicate")


def _kill_dead(proc):
    if proc.poll() is None:
        proc.kill()
    proc.wait(timeout=10)
    proc.stdout.close()


@pytest.fixture
def reference_record():
    instance = replace(random_instance("matching", n=40, seed=5),
                       max_rounds=1000)
    return result_record(solve(instance, "matching-proposal"))


class TestKillMinusNine:
    def test_restart_finishes_bit_identically(self, tmp_path,
                                              reference_record):
        # --- first life: submit, wait for mid-run journal, kill -9 ---
        first = _spawn(tmp_path)
        try:
            port, recovered, requeued = _await_ready(first)
            assert (recovered, requeued) == (0, 0)
            _status, record = _request(port, "POST", "/jobs", JOB_BODY)
            job_id = record["id"]
            mid = _poll(port, job_id,
                        lambda r: r["checkpoints"] >= 3)
            # the kill must land mid-solve, not after completion
            assert mid["status"] == "running", mid["status"]
            os.kill(first.pid, signal.SIGKILL)
        finally:
            _kill_dead(first)

        # the journal survived the kill with a mid-run envelope
        journal_path = tmp_path / f"{job_id}.json"
        with open(journal_path) as handle:
            journaled = json.load(handle)
        assert journaled["status"] == "running"
        assert journaled["envelope"] is not None
        assert journaled["envelope"]["payload"]["rounds"] > 0

        # --- second life: restart on the same state dir ---------------
        second = _spawn(tmp_path)
        try:
            port, recovered, requeued = _await_ready(second)
            assert requeued == 1
            done = _poll(port, job_id, lambda r: r["status"] in
                         ("complete", "truncated", "failed"))
            assert done["status"] == "complete"
            assert done["recovered"] is True
            # the headline bit: byte-identical to the uninterrupted run
            assert json.dumps(done["result"], sort_keys=True) == \
                json.dumps(reference_record, sort_keys=True)
        finally:
            _kill_dead(second)

        # the journal now holds the terminal record, so a third boot
        # restores (not re-runs) the job
        third = _spawn(tmp_path)
        try:
            _port, recovered, requeued = _await_ready(third)
            assert (recovered, requeued) == (1, 0)
        finally:
            _kill_dead(third)
