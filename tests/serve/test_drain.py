"""Graceful drain, end to end: SIGTERM the daemon mid-solve and the
job parks at a journaled checkpoint; a restart on the same
``--state-dir`` finishes it byte-identically to a never-stopped run.

The SIGTERM sibling of ``test_crash_resume.py``'s ``kill -9`` test:
there the journal's last checkpoint is all that survives; here the
daemon actively winds down — stops accepting, journals every running
job's freshest resume envelope, prints the drain summary, and exits 0.
"""

from __future__ import annotations

import http.client
import json
import os
import re
import select
import signal
import subprocess
import sys
import time
from dataclasses import replace

import pytest

from repro.api import random_instance, solve
from repro.serve.protocol import result_record

JOB_BODY = {
    "workload": {"problem": "matching", "nodes": 40, "seed": 5},
    "algorithm": "matching-proposal",
    "max_rounds": 1000,
}
#: Sleep per checkpoint inside the daemon — keeps the job running long
#: enough that SIGTERM always lands mid-solve.
PHASE_DELAY = 0.25

READY_LINE = re.compile(
    r"repro-serve listening on http://[^:]+:(\d+) "
    r"\(recovered (\d+), requeued (\d+)\)")
DRAINED_LINE = re.compile(
    r"repro-serve drained: (\d+) job\(s\) checkpointed, "
    r"(\d+) still queued, clean=(True|False)")


def _spawn(state_dir):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", "1", "--state-dir", str(state_dir),
         "--phase-delay", str(PHASE_DELAY),
         "--drain-timeout", "30"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env, cwd=os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))),
    )


def _await_ready(proc, timeout=30.0):
    """Read stdout until the ready line; return (port, recovered,
    requeued)."""

    deadline = time.monotonic() + timeout
    buffer = ""
    os.set_blocking(proc.stdout.fileno(), False)
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise AssertionError(
                f"daemon exited early: {buffer + (proc.stdout.read() or '')}")
        ready, _, _ = select.select([proc.stdout], [], [], 0.1)
        if not ready:
            continue
        chunk = proc.stdout.read()
        if chunk:
            buffer += chunk
        match = READY_LINE.search(buffer)
        if match:
            return (int(match.group(1)), int(match.group(2)),
                    int(match.group(3)))
    raise AssertionError(f"no ready line within {timeout}s: {buffer!r}")


def _request(port, method, path, body=None, timeout=30):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        conn.request(method, path, body=payload)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def _poll(port, job_id, predicate, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _status, record = _request(port, "GET", f"/jobs/{job_id}")
        if predicate(record):
            return record
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never satisfied the predicate")


def _kill_dead(proc):
    if proc.poll() is None:
        proc.kill()
    proc.wait(timeout=10)
    proc.stdout.close()


@pytest.fixture
def reference_record():
    instance = replace(random_instance("matching", n=40, seed=5),
                       max_rounds=1000)
    return result_record(solve(instance, "matching-proposal"))


class TestSigtermDrain:
    def test_drain_exits_zero_and_restart_finishes_bit_identically(
            self, tmp_path, reference_record):
        # --- first life: submit, wait until mid-solve, SIGTERM ---
        first = _spawn(tmp_path)
        try:
            port, recovered, requeued = _await_ready(first)
            assert (recovered, requeued) == (0, 0)
            _status, record = _request(port, "POST", "/jobs", JOB_BODY)
            job_id = record["id"]
            mid = _poll(port, job_id, lambda r: r["checkpoints"] >= 3)
            assert mid["status"] == "running", mid["status"]
            first.send_signal(signal.SIGTERM)
            first.wait(timeout=60)
            output = first.stdout.read() or ""
        finally:
            _kill_dead(first)
        assert first.returncode == 0, output
        match = DRAINED_LINE.search(output)
        assert match, f"no drain summary in {output!r}"
        assert int(match.group(1)) == 1  # the running job checkpointed
        assert match.group(3) == "True"

        # the journal holds a non-terminal record with a resume envelope
        with open(tmp_path / f"{job_id}.json") as handle:
            parked = json.load(handle)
        assert parked["status"] == "queued"
        assert parked["envelope"] is not None
        assert 0 < parked["envelope"]["payload"]["rounds"] < \
            reference_record["rounds"]

        # --- second life: recover, finish, compare byte-for-byte ---
        second = _spawn(tmp_path)
        try:
            port, recovered, requeued = _await_ready(second)
            assert requeued == 1
            done = _poll(port, job_id,
                         lambda r: r["status"] == "complete")
            assert json.dumps(done["result"], sort_keys=True) == \
                json.dumps(reference_record, sort_keys=True)
            second.send_signal(signal.SIGTERM)
            second.wait(timeout=60)
        finally:
            _kill_dead(second)
        assert second.returncode == 0
