"""Resilience hardening under an armed fault plane (in-process).

Every scenario drives a real ``JobManager`` with a seeded
:class:`~repro.faults.FaultPlan`: transient crashes retry to the
bit-identical fault-free result, journal I/O errors degrade (then
heal) health instead of killing jobs, a stalled worker is truncated by
the watchdog into a certified partial, and drain parks running jobs at
a journaled, resumable stopping point.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.api import random_instance, solve
from repro.faults import FaultPlan, RetryPolicy
from repro.serve.health import HealthMonitor
from repro.serve.jobs import DrainingError, JobManager
from repro.serve.journal import Journal, job_record
from repro.serve.protocol import result_record

MAXIS_SPEC = {
    "workload": {"problem": "maxis", "nodes": 40, "seed": 5},
    "algorithm": "maxis-coloring",
}
#: Fast backoff so retry scenarios finish in test time.
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay_s=0.001, seed=0)


def _wait(job, timeout=30.0):
    deadline = time.monotonic() + timeout
    while not job.done:
        if time.monotonic() > deadline:
            raise AssertionError(f"job {job.id} stuck in {job.status!r}")
        time.sleep(0.01)
    return job


def _run(manager, spec):
    manager.start()
    try:
        return _wait(manager.submit(spec))
    finally:
        manager.shutdown()


@pytest.fixture
def direct_record():
    return result_record(solve(
        random_instance("maxis", n=40, seed=5), "maxis-coloring"))


class TestTransientRetry:
    def test_one_crash_retries_to_bit_identical_result(
            self, direct_record):
        plan = FaultPlan(seed=0, sites={
            "worker.transient": {"rate": 1.0, "limit": 1}})
        mgr = JobManager(workers=1, fault_plan=plan, retry=FAST_RETRY)
        job = _run(mgr, MAXIS_SPEC)
        assert job.status == "complete"
        assert job.attempts == 2
        assert len(job.attempt_errors) == 1
        assert "TransientFault" in job.attempt_errors[0]
        assert json.dumps(job.result, sort_keys=True) == \
            json.dumps(direct_record, sort_keys=True)
        assert mgr.stats()["retries_total"] == 1
        assert mgr.health.snapshot()["worker_crashes"] == 1

    def test_exhausted_retries_fail_the_job_not_the_pool(self):
        plan = FaultPlan(seed=0, sites={
            "worker.transient": {"rate": 1.0}})
        mgr = JobManager(workers=1, fault_plan=plan, retry=FAST_RETRY)
        mgr.start()
        try:
            job = _wait(mgr.submit(MAXIS_SPEC))
            assert job.status == "failed"
            assert job.attempts == FAST_RETRY.max_attempts
            assert len(job.attempt_errors) == FAST_RETRY.max_attempts
            assert "TransientFault" in job.error
            # the pool survives: disarm the site and run another job
            plan.sites.pop("worker.transient")
            assert _wait(mgr.submit(
                {**MAXIS_SPEC, "workload": {
                    "problem": "maxis", "nodes": 30, "seed": 2}},
            )).status == "complete"
        finally:
            mgr.shutdown()

    def test_retry_disabled_fails_on_first_transient(self):
        plan = FaultPlan(seed=0, sites={
            "worker.transient": {"rate": 1.0, "limit": 1}})
        mgr = JobManager(workers=1, fault_plan=plan, retry=None)
        job = _run(mgr, MAXIS_SPEC)
        assert job.status == "failed"
        assert job.attempts == 1

    def test_budgeted_retry_warm_starts_bit_identically(self):
        """A retried *budgeted* job warm-starts from its last journaled
        checkpoint and still matches the uninterrupted run bit for
        bit — the resume contract under fault injection."""

        from dataclasses import replace

        spec = {
            "workload": {"problem": "matching", "nodes": 40, "seed": 5},
            "algorithm": "matching-proposal",
            "max_rounds": 1000,
        }
        plan = FaultPlan(seed=0, sites={
            "worker.transient": {"rate": 1.0, "limit": 1}})
        mgr = JobManager(workers=1, fault_plan=plan, retry=FAST_RETRY)
        job = _run(mgr, spec)
        assert job.status == "complete"
        uncut = result_record(solve(
            replace(random_instance("matching", n=40, seed=5),
                    max_rounds=1000),
            "matching-proposal"))
        assert json.dumps(job.result, sort_keys=True) == \
            json.dumps(uncut, sort_keys=True)


class TestJournalFaults:
    def test_write_failures_degrade_then_one_success_heals(
            self, tmp_path):
        health = HealthMonitor(journal_failure_threshold=3)
        plan = FaultPlan(seed=0, sites={
            "journal.write": {"rate": 1.0, "limit": 3}})
        journal = Journal(str(tmp_path), health=health, fault_plan=plan)
        record = job_record("job-000001-aa", MAXIS_SPEC, "queued")
        for _ in range(3):
            assert not journal.write(record)
        assert health.degraded
        assert "journal-degraded" in \
            health.snapshot()["reasons"][0]
        assert journal.errors == 3
        # the fourth write succeeds (limit exhausted) and heals
        assert journal.write(record)
        assert not health.degraded
        assert health.snapshot()["journal_errors_total"] == 3

    def test_faulted_writes_never_kill_the_job(self, tmp_path,
                                               direct_record):
        plan = FaultPlan(seed=0, sites={"journal.write": {"rate": 1.0}})
        mgr = JobManager(workers=1, state_dir=str(tmp_path),
                         fault_plan=plan)
        job = _run(mgr, MAXIS_SPEC)
        assert job.status == "complete"
        assert json.dumps(job.result, sort_keys=True) == \
            json.dumps(direct_record, sort_keys=True)
        assert mgr.stats()["journal_errors"] > 0

    def test_torn_tmp_files_are_swept_on_recovery(self, tmp_path):
        plan = FaultPlan(seed=0, sites={
            "journal.tmp": {"rate": 1.0, "limit": 2}})
        mgr = JobManager(workers=1, state_dir=str(tmp_path),
                         fault_plan=plan)
        job = _run(mgr, MAXIS_SPEC)
        assert job.status == "complete"
        leftovers = [name for name in tmp_path.iterdir()
                     if ".json.tmp." in name.name]
        assert leftovers
        fresh = JobManager(workers=1, state_dir=str(tmp_path))
        counts = fresh.recover()
        assert counts["swept_tmp"] == len(leftovers)
        assert counts["restored"] == 1
        assert not [name for name in tmp_path.iterdir()
                    if ".json.tmp." in name.name]

    def test_recovery_counts_unreadable_and_foreign_files(
            self, tmp_path):
        (tmp_path / "torn.json").write_text("{not json")
        (tmp_path / "foreign.json").write_text(
            '{"format": "other/1", "job_id": "x", "spec": {}}')
        (tmp_path / "stale.json.tmp.4242").write_text('{"torn": ')
        mgr = JobManager(workers=1, state_dir=str(tmp_path))
        counts = mgr.recover()
        assert counts == {"restored": 0, "requeued": 0,
                          "skipped": 2, "swept_tmp": 1, "pruned": 0}
        assert mgr.stats()["recovery"] == counts

    def test_remove_tolerates_missing_but_reports_real_errors(
            self, tmp_path):
        health = HealthMonitor()
        journal = Journal(str(tmp_path), health=health)
        journal.remove("job-000001-gone")  # FileNotFoundError: fine
        assert journal.errors == 0
        # a directory where the record file should be raises a
        # non-ENOENT OSError: reported, not swallowed
        (tmp_path / "job-x.json").mkdir()
        (tmp_path / "job-x.json" / "pin").write_text("")
        journal.remove("job-x")
        assert journal.errors == 1
        assert health.snapshot()["journal_errors_total"] == 1


class TestWatchdog:
    def test_stalled_job_truncates_to_certified_partial(self):
        plan = FaultPlan(seed=0, sites={
            "worker.stall": {"rate": 1.0, "limit": 1, "stall_s": 60.0}})
        mgr = JobManager(workers=1, fault_plan=plan, watchdog_s=0.2)
        started = time.monotonic()
        job = _run(mgr, {**MAXIS_SPEC, "max_rounds": 1000})
        assert time.monotonic() - started < 30.0  # not the 60s stall
        assert job.status == "truncated"
        assert job.abort_reason == "watchdog"
        assert job.result["status"] == "truncated"
        # the partial is certified: a valid solution with its objective
        assert job.result["objective"] >= 0
        assert job.result["solution"] is not None

    def test_watchdog_results_are_never_cached(self):
        plan = FaultPlan(seed=0, sites={
            "worker.stall": {"rate": 1.0, "limit": 1, "stall_s": 60.0}})
        mgr = JobManager(workers=1, fault_plan=plan, watchdog_s=0.2)
        mgr.start()
        try:
            spec = {**MAXIS_SPEC, "max_rounds": 1000}
            _wait(mgr.submit(spec))
            rerun = _wait(mgr.submit(spec))
        finally:
            mgr.shutdown()
        assert not rerun.cache_hit
        assert rerun.status == "complete"  # stall limit spent


class TestDrain:
    def test_drain_parks_running_jobs_resumably(self, tmp_path):
        from dataclasses import replace

        spec = {
            "workload": {"problem": "matching", "nodes": 40, "seed": 5},
            "algorithm": "matching-proposal",
            "max_rounds": 1000,
        }
        mgr = JobManager(workers=1, state_dir=str(tmp_path),
                         phase_delay_s=0.05)
        mgr.start()
        job = mgr.submit(spec)
        deadline = time.monotonic() + 30.0
        while job.checkpoints < 3:
            assert time.monotonic() < deadline, "no checkpoints"
            time.sleep(0.005)
        stats = mgr.drain(timeout_s=30.0)
        assert stats["clean"]
        assert stats["drained"] == 1
        assert job.status == "queued"
        with pytest.raises(DrainingError):
            mgr.submit(spec)
        assert mgr.stats()["draining"]
        mgr.shutdown()
        # restart on the same state dir: the parked job finishes
        # bit-identically to a never-stopped run
        fresh = JobManager(workers=1, state_dir=str(tmp_path))
        assert fresh.recover()["requeued"] == 1
        fresh.start()
        try:
            resumed = _wait(fresh.get(job.id))
        finally:
            fresh.shutdown()
        assert resumed.status == "complete"
        uncut = result_record(solve(
            replace(random_instance("matching", n=40, seed=5),
                    max_rounds=1000),
            "matching-proposal"))
        assert json.dumps(resumed.result, sort_keys=True) == \
            json.dumps(uncut, sort_keys=True)


class TestDispatcherDeath:
    def test_death_degrades_health_and_leaves_jobs_journaled(
            self, tmp_path):
        plan = FaultPlan(seed=0, sites={"dispatcher.death": {"after": 1}})
        mgr = JobManager(workers=1, state_dir=str(tmp_path),
                         fault_plan=plan)
        mgr.start()
        try:
            job = mgr.submit(MAXIS_SPEC)
            deadline = time.monotonic() + 10.0
            while not mgr.health.snapshot()["dispatcher_dead"]:
                assert time.monotonic() < deadline, \
                    "dispatcher never died"
                time.sleep(0.01)
            assert mgr.health.degraded
            assert job.status == "queued"
        finally:
            mgr.shutdown()
        # the submit-time journal record survives for the restart
        fresh = JobManager(workers=1, state_dir=str(tmp_path))
        counts = fresh.recover()
        assert counts["requeued"] == 1
        fresh.start()
        try:
            assert _wait(fresh.get(job.id)).status == "complete"
        finally:
            fresh.shutdown()
