"""HTTP layer: routes, status codes, and checkpoint streaming.

A real ``asyncio.start_server`` instance runs on an ephemeral port in
a background thread; the tests speak HTTP/1.1 to it over plain
sockets via ``http.client``, exactly like the curl quickstart.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading

import pytest

from repro.serve.daemon import ServerConfig, build_manager
from repro.serve.http import MAX_BODY, ServiceHandler

MAXIS_BODY = {
    "workload": {"problem": "maxis", "nodes": 30, "seed": 2},
    "algorithm": "maxis-layers",
}


class _LiveServer:
    """The service on an ephemeral port, driven from a daemon thread."""

    def __init__(self, **manager_kwargs):
        self.manager = build_manager(ServerConfig(**manager_kwargs))
        self.port = None
        self._loop = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        async def serve():
            self.manager.start()
            handler = ServiceHandler(self.manager, stream_poll_s=0.01)
            server = await asyncio.start_server(
                handler.handle, "127.0.0.1", 0)
            self.port = server.sockets[0].getsockname()[1]
            self._ready.set()
            async with server:
                await asyncio.Event().wait()

        self._loop = asyncio.new_event_loop()
        try:
            self._loop.run_until_complete(serve())
        except RuntimeError:
            pass  # loop stopped from outside at teardown

    def start(self):
        self._thread.start()
        assert self._ready.wait(timeout=10), "server did not come up"
        return self

    def stop(self):
        self.manager.shutdown()
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5)

    def request(self, method, path, body=None):
        conn = http.client.HTTPConnection("127.0.0.1", self.port,
                                          timeout=30)
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            data = response.read()
            return response.status, json.loads(data)
        finally:
            conn.close()

    def poll_done(self, job_id, timeout=30.0):
        import time

        deadline = time.monotonic() + timeout
        while True:
            status, record = self.request("GET", f"/jobs/{job_id}")
            assert status == 200
            if record["status"] in ("complete", "truncated", "failed"):
                return record
            assert time.monotonic() < deadline, \
                f"job stuck in {record['status']!r}"
            time.sleep(0.02)


@pytest.fixture(scope="module")
def server():
    live = _LiveServer(workers=2, cache_size=16).start()
    yield live
    live.stop()


class TestRoutes:
    def test_healthz(self, server):
        status, payload = server.request("GET", "/healthz")
        assert status == 200
        assert payload["ok"] is True

    def test_submit_poll_complete(self, server):
        status, record = server.request("POST", "/jobs", MAXIS_BODY)
        assert status == 201
        assert record["id"].startswith("job-")
        done = server.poll_done(record["id"])
        assert done["status"] == "complete"
        assert done["result"]["objective"] > 0
        assert done["latest"]["final"] is True

    def test_cache_hit_on_resubmit(self, server):
        first = server.poll_done(
            server.request("POST", "/jobs", MAXIS_BODY)[1]["id"])
        status, second = server.request("POST", "/jobs", MAXIS_BODY)
        assert status == 201
        assert second["cache_hit"] is True
        assert second["result"] == first["result"]

    def test_job_listing_omits_results(self, server):
        server.poll_done(
            server.request("POST", "/jobs", MAXIS_BODY)[1]["id"])
        status, payload = server.request("GET", "/jobs")
        assert status == 200
        assert payload["jobs"]
        assert all("result" not in job for job in payload["jobs"])

    def test_stats_shape(self, server):
        status, stats = server.request("GET", "/stats")
        assert status == 200
        for key in ("jobs", "queue_depth", "cache", "latency",
                    "rounds_total", "checkpoints_total", "workers"):
            assert key in stats
        assert set(stats["latency"]) == {"count", "p50_ms", "p95_ms"}

    def test_bad_spec_is_400(self, server):
        status, payload = server.request(
            "POST", "/jobs", {"algorithm": "no-such"})
        assert status == 400
        assert "error" in payload

    def test_non_json_body_is_400(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                          timeout=30)
        try:
            conn.request("POST", "/jobs", body=b"{nope")
            response = conn.getresponse()
            assert response.status == 400
        finally:
            conn.close()

    def test_unknown_job_is_404(self, server):
        status, payload = server.request("GET", "/jobs/job-999999-dead")
        assert status == 404
        assert "error" in payload

    def test_unknown_route_is_404(self, server):
        assert server.request("GET", "/nope")[0] == 404

    def test_wrong_method_is_405(self, server):
        assert server.request("POST", "/healthz", {})[0] == 405
        assert server.request("DELETE", "/jobs")[0] == 405
        assert server.request("POST", "/jobs/job-000001-x", {})[0] == 405

    def test_oversized_body_is_413(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                          timeout=30)
        try:
            conn.putrequest("POST", "/jobs")
            conn.putheader("Content-Length", str(MAX_BODY + 1))
            conn.endheaders()
            response = conn.getresponse()
            assert response.status == 413
        finally:
            conn.close()


class TestStreaming:
    def test_stream_yields_updates_then_terminal(self, server):
        body = dict(MAXIS_BODY,
                    workload={"problem": "maxis", "nodes": 50,
                              "seed": 9})
        _status, record = server.request("POST", "/jobs", body)
        conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                          timeout=30)
        try:
            conn.request("GET", f"/jobs/{record['id']}/stream")
            response = conn.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Type") == \
                "application/x-ndjson"
            lines = [json.loads(line)
                     for line in response.read().splitlines() if line]
        finally:
            conn.close()
        assert len(lines) >= 2
        assert lines[-1]["status"] == "complete"
        checkpoints = [line["checkpoints"] for line in lines]
        assert checkpoints == sorted(checkpoints)
        # every streamed update carries the latest checkpoint view
        assert lines[-1]["latest"]["final"] is True

    def test_stream_for_unknown_job_is_404(self, server):
        status, payload = server.request(
            "GET", "/jobs/job-424242-beef/stream")
        assert status == 404
        assert "error" in payload
