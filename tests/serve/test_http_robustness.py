"""HTTP-layer robustness: rude clients, degraded health, draining.

Satellite of the fault-injection PR: a client hanging up mid-stream
must not kill the job or leak the writer; malformed/oversized bodies
must be rejected without touching the journal; ``/healthz`` must turn
503 while degraded or draining; the ``stream.disconnect`` fault site
must drop connections server-side without losing the job.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import os
import threading
import time

import pytest

from repro.faults import FaultPlan
from repro.serve.daemon import ServerConfig, build_manager
from repro.serve.http import MAX_BODY, ServiceHandler

MAXIS_BODY = {
    "workload": {"problem": "maxis", "nodes": 50, "seed": 9},
    "algorithm": "maxis-layers",
}


class _LiveServer:
    """The service on an ephemeral port, driven from a daemon thread."""

    def __init__(self, **config_kwargs):
        self.manager = build_manager(ServerConfig(**config_kwargs))
        self.port = None
        self._loop = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        async def serve():
            self.manager.start()
            handler = ServiceHandler(self.manager, stream_poll_s=0.01)
            server = await asyncio.start_server(
                handler.handle, "127.0.0.1", 0)
            self.port = server.sockets[0].getsockname()[1]
            self._ready.set()
            async with server:
                await asyncio.Event().wait()

        self._loop = asyncio.new_event_loop()
        try:
            self._loop.run_until_complete(serve())
        except RuntimeError:
            pass  # loop stopped from outside at teardown

    def start(self):
        self._thread.start()
        assert self._ready.wait(timeout=10), "server did not come up"
        return self

    def stop(self):
        self.manager.shutdown()
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5)

    def request(self, method, path, body=None):
        conn = http.client.HTTPConnection("127.0.0.1", self.port,
                                          timeout=30)
        try:
            payload = None
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
            conn.request(method, path, body=payload)
            response = conn.getresponse()
            return response.status, json.loads(response.read())
        finally:
            conn.close()

    def poll_done(self, job_id, timeout=60.0):
        deadline = time.monotonic() + timeout
        while True:
            status, record = self.request("GET", f"/jobs/{job_id}")
            assert status == 200
            if record["status"] in ("complete", "truncated", "failed"):
                return record
            assert time.monotonic() < deadline, \
                f"job stuck in {record['status']!r}"
            time.sleep(0.02)


@pytest.fixture
def server():
    live = _LiveServer(workers=2, cache_size=16,
                       phase_delay_s=0.02).start()
    yield live
    live.stop()


class TestClientDisconnect:
    def test_hangup_mid_stream_does_not_kill_the_job(self, server):
        _status, record = server.request("POST", "/jobs", MAXIS_BODY)
        job_id = record["id"]
        conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                          timeout=30)
        try:
            conn.request("GET", f"/jobs/{job_id}/stream")
            response = conn.getresponse()
            assert response.status == 200
            first = response.readline()  # one update arrived
            assert json.loads(first)["id"] == job_id
        finally:
            conn.close()  # hang up mid-stream, job still running
        done = server.poll_done(job_id)
        assert done["status"] == "complete"
        assert done["result"]["objective"] > 0
        # the dropped writer degraded nothing
        assert server.manager.health.snapshot()["state"] == "ok"

    def test_injected_disconnect_drops_stream_but_not_job(self):
        plan = FaultPlan(seed=0, sites={
            "stream.disconnect": {"rate": 1.0, "limit": 1}})
        live = _LiveServer(workers=2, cache_size=16,
                           phase_delay_s=0.02,
                           fault_plan=plan).start()
        try:
            _status, record = live.request("POST", "/jobs", MAXIS_BODY)
            job_id = record["id"]
            conn = http.client.HTTPConnection("127.0.0.1", live.port,
                                              timeout=30)
            try:
                conn.request("GET", f"/jobs/{job_id}/stream")
                response = conn.getresponse()
                assert response.status == 200
                # the server hangs up before the terminal chunk
                with pytest.raises((http.client.IncompleteRead,
                                    ConnectionError)):
                    response.read()
            finally:
                conn.close()
            assert live.poll_done(job_id)["status"] == "complete"
        finally:
            live.stop()


class TestBadInputNeverTouchesJournal:
    def test_malformed_and_oversized_posts_are_rejected_cleanly(
            self, tmp_path):
        state = tmp_path / "state"
        live = _LiveServer(workers=1, state_dir=str(state)).start()
        try:
            conn = http.client.HTTPConnection("127.0.0.1", live.port,
                                              timeout=30)
            try:
                conn.request("POST", "/jobs", body=b"{nope")
                assert conn.getresponse().status == 400
            finally:
                conn.close()
            conn = http.client.HTTPConnection("127.0.0.1", live.port,
                                              timeout=30)
            try:
                conn.putrequest("POST", "/jobs")
                conn.putheader("Content-Length", str(MAX_BODY + 1))
                conn.endheaders()
                assert conn.getresponse().status == 413
            finally:
                conn.close()
            status, _payload = live.request(
                "POST", "/jobs", {"algorithm": "no-such"})
            assert status == 400
            # none of the rejects reached the journal
            assert os.listdir(state) == []
            assert live.manager.stats()["jobs"]["total"] == 0
        finally:
            live.stop()


class TestHealthz:
    def test_degraded_health_is_503_with_reasons(self):
        live = _LiveServer(workers=1).start()
        try:
            assert live.request("GET", "/healthz")[0] == 200
            live.manager.health.dispatcher_dead()
            status, payload = live.request("GET", "/healthz")
            assert status == 503
            assert payload["ok"] is False
            assert payload["state"] == "degraded"
            assert "dispatcher-dead" in payload["reasons"]
        finally:
            live.stop()

    def test_draining_rejects_submits_and_flips_healthz(self):
        live = _LiveServer(workers=1).start()
        try:
            live.manager.drain(timeout_s=5.0)
            status, payload = live.request("GET", "/healthz")
            assert status == 503
            assert payload["state"] == "draining"
            status, payload = live.request("POST", "/jobs", MAXIS_BODY)
            assert status == 503
            assert "draining" in payload["error"]
        finally:
            live.stop()
