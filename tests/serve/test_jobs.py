"""JobManager lifecycle: queueing, budgets, cache, journal, recovery."""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.api import random_instance, solve, solve_iter
from repro.api.persist import RESUME_FILE_FORMAT
from repro.serve.daemon import ServerConfig, build_manager
from repro.serve.jobs import JobManager
from repro.serve.journal import JOB_FILE_FORMAT, Journal, job_record
from repro.serve.protocol import SpecError, result_record

MAXIS_SPEC = {
    "workload": {"problem": "maxis", "nodes": 40, "seed": 5},
    "algorithm": "maxis-coloring",
}


def _wait(job, timeout=30.0):
    deadline = time.monotonic() + timeout
    while not job.done:
        if time.monotonic() > deadline:
            raise AssertionError(
                f"job {job.id} stuck in {job.status!r}")
        time.sleep(0.01)
    return job


@pytest.fixture
def manager():
    mgr = JobManager(workers=2, cache_size=8)
    mgr.start()
    yield mgr
    mgr.shutdown()


class TestExecution:
    def test_submit_runs_to_complete(self, manager):
        job = _wait(manager.submit(MAXIS_SPEC))
        assert job.status == "complete"
        assert job.checkpoints > 1
        assert job.result["objective"] > 0
        assert job.result["resume"] is None
        # matches a direct facade solve bit for bit
        direct = result_record(solve(
            random_instance("maxis", n=40, seed=5), "maxis-coloring"))
        assert json.dumps(job.result, sort_keys=True) == \
            json.dumps(direct, sort_keys=True)

    def test_round_budget_truncates_with_resume_state(self, manager):
        job = _wait(manager.submit({**MAXIS_SPEC, "max_rounds": 18}))
        assert job.status == "truncated"
        assert 0 < job.result["rounds"] <= 18
        assert job.result["resume"] is not None
        assert job.result["resume"]["algorithm"] == "maxis-coloring"

    def test_wall_budget_truncates_with_best_partial(self, manager):
        job = _wait(manager.submit({**MAXIS_SPEC, "max_rounds": 1000,
                                    "time_budget_s": 0}))
        assert job.status == "truncated"
        assert job.result["status"] == "truncated"
        assert job.result["bound"] is None

    def test_bad_option_fails_job_not_manager(self, manager):
        job = _wait(manager.submit(
            {**MAXIS_SPEC, "options": {"bogus_kw": 1}}))
        assert job.status == "failed"
        assert "bogus_kw" in job.error
        # the pool survives: a following job still runs
        assert _wait(manager.submit(MAXIS_SPEC)).status == "complete"

    def test_invalid_spec_raises_before_queueing(self, manager):
        with pytest.raises(SpecError):
            manager.submit({"algorithm": "layers"})
        assert manager.stats()["jobs"]["total"] == 0

    def test_cache_hit_serves_instantly(self, manager):
        first = _wait(manager.submit(MAXIS_SPEC))
        second = manager.submit(MAXIS_SPEC)
        assert second.done
        assert second.cache_hit
        assert second.result is first.result
        assert manager.cache.hits == 1

    def test_stats_counters(self, manager):
        _wait(manager.submit(MAXIS_SPEC))
        stats = manager.stats()
        assert stats["jobs"]["total"] == 1
        assert stats["jobs"]["by_status"]["complete"] == 1
        assert stats["queue_depth"] == 0
        assert stats["rounds_total"] > 0
        assert stats["checkpoints_total"] > 1
        assert stats["latency"]["count"] == 1
        assert stats["latency"]["p95_ms"] >= stats["latency"]["p50_ms"]
        assert stats["cache"]["misses"] == 1


class TestJournal:
    def test_terminal_record_written(self, tmp_path):
        mgr = JobManager(workers=1, state_dir=str(tmp_path))
        mgr.start()
        try:
            job = _wait(mgr.submit(MAXIS_SPEC))
            with open(tmp_path / f"{job.id}.json") as handle:
                record = json.load(handle)
        finally:
            mgr.shutdown()
        assert record["format"] == JOB_FILE_FORMAT
        assert record["status"] == "complete"
        assert record["result"] == job.result

    def test_truncated_job_journals_cli_compatible_envelope(
            self, tmp_path):
        mgr = JobManager(workers=1, state_dir=str(tmp_path))
        mgr.start()
        try:
            job = _wait(mgr.submit({**MAXIS_SPEC, "max_rounds": 18}))
            with open(tmp_path / f"{job.id}.json") as handle:
                record = json.load(handle)
        finally:
            mgr.shutdown()
        envelope = record["envelope"]
        assert envelope["format"] == RESUME_FILE_FORMAT
        assert envelope["workload"] == MAXIS_SPEC["workload"] | {
            "edge_probability": 0.12, "max_weight": 64, "eps": 0.5,
        }
        # the envelope is directly consumable by the shared resume path
        from repro.api.persist import resume_envelope_report

        report = resume_envelope_report(envelope)
        direct = solve(random_instance("maxis", n=40, seed=5),
                       "maxis-coloring")
        assert report.solution == direct.solution
        assert report.rounds == direct.rounds

    def test_replay_skips_garbage_files(self, tmp_path):
        journal = Journal(str(tmp_path))
        (tmp_path / "torn.json").write_text("{not json")
        (tmp_path / "foreign.json").write_text('{"format": "other/1"}')
        (tmp_path / "notes.txt").write_text("hi")
        journal.write(job_record(
            "job-000007-abc", dict(MAXIS_SPEC, max_rounds=None,
                                   time_budget_s=None, options={}),
            "queued"))
        replayed = list(journal.replay())
        assert [job_id for job_id, _ in replayed] == ["job-000007-abc"]


class TestJournalCompaction:
    def _seed_journal(self, tmp_path, terminal=5, queued=1):
        journal = Journal(str(tmp_path))
        spec = dict(MAXIS_SPEC, max_rounds=None, time_budget_s=None,
                    options={})
        for seq in range(1, terminal + 1):
            journal.write(job_record(
                f"job-{seq:06d}-abc", spec, "complete", rounds=3))
        for seq in range(terminal + 1, terminal + queued + 1):
            journal.write(job_record(
                f"job-{seq:06d}-abc", spec, "queued"))

    def test_recover_prunes_oldest_terminal_files(self, tmp_path):
        self._seed_journal(tmp_path, terminal=5, queued=1)
        mgr = JobManager(workers=1, state_dir=str(tmp_path),
                         journal_retain=2)
        counts = mgr.recover()
        assert counts["pruned"] == 3
        assert counts["restored"] == 5
        assert counts["requeued"] == 1
        remaining = sorted(p.name for p in tmp_path.glob("*.json"))
        # Oldest terminal journals are compacted away; the newest two
        # and the still-queued job's record survive.
        assert remaining == ["job-000004-abc.json", "job-000005-abc.json",
                             "job-000006-abc.json"]
        # Compaction only touches files: every job stays in memory.
        assert len(mgr.jobs()) == 6
        assert mgr.stats()["recovery"]["pruned"] == 3

    def test_unbounded_by_default(self, tmp_path):
        self._seed_journal(tmp_path, terminal=4, queued=0)
        mgr = JobManager(workers=1, state_dir=str(tmp_path))
        assert mgr.recover()["pruned"] == 0
        assert len(list(tmp_path.glob("*.json"))) == 4

    def test_negative_retain_rejected(self):
        with pytest.raises(ValueError):
            JobManager(journal_retain=-1)

    def test_config_passes_retain_through(self, tmp_path):
        config = ServerConfig(state_dir=str(tmp_path), journal_retain=0)
        self._seed_journal(tmp_path, terminal=2, queued=0)
        mgr = build_manager(config)
        assert mgr.journal_retain == 0
        assert mgr.recover()["pruned"] == 2
        assert list(tmp_path.glob("*.json")) == []


class TestRecovery:
    def _mid_run_payload(self, max_rounds=1000):
        """A genuine mid-run resume payload, captured like the service
        journals it: from the budgeted checkpoint stream
        (matching-proposal snapshots at every repetition boundary)."""

        from dataclasses import replace

        instance = random_instance("matching", n=40, seed=5)
        stream = solve_iter(replace(instance, max_rounds=max_rounds),
                            "matching-proposal")
        payloads = []
        while True:
            try:
                checkpoint = next(stream)
            except StopIteration:
                break
            if checkpoint.resume_state is not None:
                payloads.append(checkpoint.resume_state)
        assert len(payloads) > 3
        payload = payloads[2]  # a boundary strictly inside the run
        assert 0 < payload["rounds"] < payloads[-1]["rounds"]
        return payload

    def test_interrupted_job_resumes_bit_identically(self, tmp_path):
        spec = {
            "workload": {"problem": "matching", "nodes": 40,
                         "edge_probability": 0.12, "max_weight": 64,
                         "seed": 5, "eps": 0.5},
            "algorithm": "matching-proposal",
            "max_rounds": 1000,
            "time_budget_s": None,
            "options": {},
        }
        journal = Journal(str(tmp_path))
        journal.write(job_record("job-000003-feed", spec, "running",
                                 rounds=12,
                                 payload=self._mid_run_payload()))
        mgr = JobManager(workers=1, state_dir=str(tmp_path))
        counts = mgr.recover()
        assert counts == {"restored": 0, "requeued": 1,
                          "skipped": 0, "swept_tmp": 0, "pruned": 0}
        mgr.start()
        try:
            job = _wait(mgr.get("job-000003-feed"))
        finally:
            mgr.shutdown()
        assert job.recovered
        assert job.status == "complete"
        from dataclasses import replace

        uncut = result_record(solve(
            replace(random_instance("matching", n=40, seed=5),
                    max_rounds=1000),
            "matching-proposal"))
        assert json.dumps(job.result, sort_keys=True) == \
            json.dumps(uncut, sort_keys=True)

    def test_queued_job_without_payload_reruns_cold(self, tmp_path):
        spec = {
            "workload": dict(MAXIS_SPEC["workload"],
                             edge_probability=0.12, max_weight=64,
                             eps=0.5),
            "algorithm": "maxis-coloring",
            "max_rounds": None,
            "time_budget_s": None,
            "options": {},
        }
        Journal(str(tmp_path)).write(
            job_record("job-000001-cafe", spec, "queued"))
        mgr = JobManager(workers=1, state_dir=str(tmp_path))
        assert mgr.recover()["requeued"] == 1
        mgr.start()
        try:
            job = _wait(mgr.get("job-000001-cafe"))
        finally:
            mgr.shutdown()
        direct = result_record(solve(
            random_instance("maxis", n=40, seed=5), "maxis-coloring"))
        assert json.dumps(job.result, sort_keys=True) == \
            json.dumps(direct, sort_keys=True)

    def test_terminal_records_restore_and_seed_cache(self, tmp_path):
        mgr = JobManager(workers=1, state_dir=str(tmp_path))
        mgr.start()
        try:
            job = _wait(mgr.submit(MAXIS_SPEC))
        finally:
            mgr.shutdown()
        fresh = JobManager(workers=1, state_dir=str(tmp_path))
        counts = fresh.recover()
        assert counts == {"restored": 1, "requeued": 0,
                          "skipped": 0, "swept_tmp": 0, "pruned": 0}
        restored = fresh.get(job.id)
        assert restored.status == "complete"
        assert restored.recovered
        fresh.start()
        try:
            rerun = fresh.submit(MAXIS_SPEC)
        finally:
            fresh.shutdown()
        assert rerun.cache_hit
        assert rerun.result == job.result

    def test_new_ids_continue_past_recovered_sequence(self, tmp_path):
        mgr = JobManager(workers=1, state_dir=str(tmp_path))
        mgr.start()
        try:
            job = _wait(mgr.submit(MAXIS_SPEC))
        finally:
            mgr.shutdown()
        assert job.id.startswith("job-000001-")
        fresh = JobManager(workers=1, state_dir=str(tmp_path))
        fresh.recover()
        fresh.start()
        try:
            nxt = fresh.submit(MAXIS_SPEC)
        finally:
            fresh.shutdown()
        assert nxt.id.startswith("job-000002-")


class TestConfig:
    def test_build_manager_applies_config(self, tmp_path):
        config = ServerConfig(workers=3, state_dir=str(tmp_path),
                              cache_size=5, phase_delay_s=0.01)
        mgr = build_manager(config)
        assert mgr.workers == 3
        assert mgr.cache.maxsize == 5
        assert mgr.phase_delay_s == 0.01
        assert mgr.journal.enabled
        assert os.path.isdir(tmp_path)

    def test_worker_count_validated(self):
        with pytest.raises(ValueError):
            JobManager(workers=0)
