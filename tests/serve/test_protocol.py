"""Spec validation and record shapes of the service wire protocol."""

from __future__ import annotations

import json

import pytest

from repro.api import random_instance, solve
from repro.serve.protocol import (
    SpecError,
    canonical_json,
    encode_solution,
    result_record,
    spec_cache_key,
    validate_spec,
)


def _spec(**overrides):
    body = {
        "workload": {"problem": "maxis", "nodes": 20, "seed": 3},
        "algorithm": "maxis-layers",
    }
    body.update(overrides)
    return body


class TestValidateSpec:
    def test_minimal_spec_gets_defaults(self):
        spec = validate_spec(_spec())
        assert spec["workload"] == {
            "problem": "maxis", "nodes": 20, "edge_probability": 0.12,
            "max_weight": 64, "seed": 3, "eps": 0.5,
        }
        assert spec["algorithm"] == "maxis-layers"
        assert spec["max_rounds"] is None
        assert spec["time_budget_s"] is None
        assert spec["options"] == {}

    def test_cli_short_name_resolves_to_registry_name(self):
        spec = validate_spec(_spec(algorithm="layers"))
        assert spec["algorithm"] == "maxis-layers"

    def test_budgets_and_options_pass_through(self):
        spec = validate_spec(_spec(max_rounds=12, time_budget_s=0.5,
                                   options={"trace": False}))
        assert spec["max_rounds"] == 12
        assert spec["time_budget_s"] == 0.5
        assert spec["options"] == {"trace": False}

    @pytest.mark.parametrize("body", [
        None,
        [],
        "spec",
        {},
        {"workload": "nope", "algorithm": "layers"},
        _spec(algorithm=None),
        _spec(algorithm="no-such-algorithm"),
        _spec(max_rounds=-1),
        _spec(max_rounds=1.5),
        _spec(time_budget_s=-0.1),
        _spec(options=["k"]),
        _spec(options={1: 2}),
        _spec(bogus_key=1),
        {"workload": {"problem": "maxis", "nodes": 20, "weird": 1},
         "algorithm": "layers"},
        {"workload": {"problem": "unknown", "nodes": 20},
         "algorithm": "layers"},
        {"workload": {"problem": "maxis", "nodes": -5},
         "algorithm": "layers"},
        {"workload": {"problem": "maxis"}, "algorithm": "layers"},
    ])
    def test_bad_specs_raise(self, body):
        with pytest.raises(SpecError):
            validate_spec(body)


class TestCacheKey:
    def test_key_depends_on_round_budget(self):
        base = validate_spec(_spec())
        budgeted = validate_spec(_spec(max_rounds=5))
        assert spec_cache_key(base) != spec_cache_key(budgeted)

    def test_key_ignores_wall_budget(self):
        fast = validate_spec(_spec(time_budget_s=0.01))
        slow = validate_spec(_spec(time_budget_s=10.0))
        assert spec_cache_key(fast) == spec_cache_key(slow)

    def test_key_depends_on_workload_and_options(self):
        a = validate_spec(_spec())
        b = validate_spec(
            _spec(workload={"problem": "maxis", "nodes": 20, "seed": 4}))
        c = validate_spec(_spec(options={"trace": False}))
        assert len({spec_cache_key(s) for s in (a, b, c)}) == 3


class TestRecords:
    def test_encode_solution_is_sorted_and_json_safe(self):
        edges = frozenset({frozenset({3, 1}), frozenset({2, 0})})
        encoded = encode_solution(edges)
        assert encoded == [[0, 2], [1, 3]]
        json.dumps(encoded)  # must not raise

    def test_encode_node_solution(self):
        assert encode_solution(frozenset({5, 2, 9})) == [2, 5, 9]

    def test_result_record_round_trips_canonically(self):
        report = solve(random_instance("maxis", n=16, seed=2),
                       "maxis-layers")
        record = result_record(report)
        assert record["status"] == "complete"
        assert record["objective"] == report.objective
        assert record["rounds"] == report.rounds
        assert record["resume"] is None
        # canonical form is stable through a JSON round trip
        assert canonical_json(json.loads(canonical_json(record))) == \
            canonical_json(record)

    def test_identical_runs_produce_identical_records(self):
        records = [
            canonical_json(result_record(solve(
                random_instance("matching", n=18, seed=4),
                "matching-proposal",
            )))
            for _ in range(2)
        ]
        assert records[0] == records[1]
