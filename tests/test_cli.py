"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import MATCHING_ALGORITHMS, MAXIS_ALGORITHMS, main


class TestInfo:
    def test_prints_inventory(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Algorithm 2" in out
        assert "Theorem B.4" in out

    def test_json_registry(self, capsys):
        assert main(["info", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert isinstance(entries, list) and entries
        by_name = {entry["name"]: entry for entry in entries}
        assert {"maxis-layers", "maxis-coloring", "matching-oneeps",
                "matching-fast2eps"} <= set(by_name)
        for entry in entries:
            assert {"name", "problem", "paper", "guarantee",
                    "models"} <= set(entry)
        assert by_name["maxis-layers"]["problem"] == "maxis"
        assert by_name["matching-oneeps"]["models"] == ["LOCAL"]

    def test_json_registry_covers_cli_choices(self, capsys):
        main(["info", "--json"])
        entries = json.loads(capsys.readouterr().out)
        maxis = {e["cli"] for e in entries if e["problem"] == "maxis"}
        matching = {e["cli"] for e in entries if e["problem"] == "matching"}
        assert set(MAXIS_ALGORITHMS) <= maxis
        assert set(MATCHING_ALGORITHMS) <= matching


class TestMaxis:
    @pytest.mark.parametrize("algorithm", MAXIS_ALGORITHMS)
    def test_runs_and_reports_ratio(self, algorithm, capsys):
        code = main(["maxis", "--algorithm", algorithm, "--nodes", "18",
                     "--max-weight", "16", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ratio" in out
        assert "rounds" in out

    def test_skip_oracle(self, capsys):
        main(["maxis", "--nodes", "18", "--skip-oracle"])
        out = capsys.readouterr().out
        assert "ratio" not in out


class TestMatching:
    @pytest.mark.parametrize("algorithm", MATCHING_ALGORITHMS)
    def test_runs_each_algorithm(self, algorithm, capsys):
        code = main(["matching", "--algorithm", algorithm, "--nodes",
                     "16", "--seed", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "rounds" in out

    def test_export_csv(self, tmp_path, capsys):
        out_file = tmp_path / "row.csv"
        main(["matching", "--algorithm", "lines", "--nodes", "14",
              "--export", str(out_file)])
        assert out_file.exists()
        assert "algorithm" in out_file.read_text()

    def test_export_json(self, tmp_path, capsys):
        out_file = tmp_path / "row.json"
        main(["maxis", "--nodes", "12", "--export", str(out_file)])
        assert out_file.exists()

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            main(["matching", "--algorithm", "bogus"])


class TestResumeVerb:
    def uncut_weight(self, capsys):
        main(["maxis", "--nodes", "60", "--seed", "5", "--skip-oracle"])
        row = capsys.readouterr().out.splitlines()[-1].split()
        return row

    def test_truncate_save_resume_round_trip(self, tmp_path, capsys):
        full_row = self.uncut_weight(capsys)
        state = tmp_path / "cp.json"
        code = main(["maxis", "--nodes", "60", "--seed", "5",
                     "--skip-oracle", "--max-rounds", "4",
                     "--save-state", str(state)])
        assert code == 0
        out = capsys.readouterr().out
        assert "truncated" in out
        assert state.exists()
        envelope = json.loads(state.read_text())
        assert envelope["format"] == "repro-resume-file/1"
        assert envelope["workload"]["nodes"] == 60
        code = main(["resume", str(state), "--skip-oracle"])
        assert code == 0
        resumed_row = capsys.readouterr().out.splitlines()[-1].split()
        assert resumed_row == full_row

    def test_multi_hop_with_backend_switch(self, tmp_path, capsys):
        full_row = self.uncut_weight(capsys)
        state = tmp_path / "cp.json"
        main(["maxis", "--nodes", "60", "--seed", "5", "--skip-oracle",
              "--max-rounds", "3", "--save-state", str(state),
              "--backend", "array"])
        capsys.readouterr()
        code = main(["resume", str(state), "--skip-oracle",
                     "--max-rounds", "6", "--save-state", str(state)])
        assert code == 0
        assert "truncated" in capsys.readouterr().out
        code = main(["resume", str(state), "--skip-oracle",
                     "--backend", "array"])
        assert code == 0
        resumed_row = capsys.readouterr().out.splitlines()[-1].split()
        assert resumed_row == full_row

    def test_completed_run_saves_nothing(self, tmp_path, capsys):
        state = tmp_path / "cp.json"
        main(["maxis", "--nodes", "14", "--skip-oracle",
              "--save-state", str(state)])
        assert "no state written" in capsys.readouterr().out
        assert not state.exists()

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        code = main(["resume", str(tmp_path / "nope.json")])
        assert code == 1
        assert "cannot read state file" in capsys.readouterr().err

    def test_malformed_file_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"format": "bogus"}))
        code = main(["resume", str(bad)])
        assert code == 1
        assert "not a 'repro-resume-file/1' state file" in \
            capsys.readouterr().err
