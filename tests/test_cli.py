"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import MATCHING_ALGORITHMS, MAXIS_ALGORITHMS, main


class TestInfo:
    def test_prints_inventory(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Algorithm 2" in out
        assert "Theorem B.4" in out

    def test_json_registry(self, capsys):
        assert main(["info", "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert isinstance(entries, list) and entries
        by_name = {entry["name"]: entry for entry in entries}
        assert {"maxis-layers", "maxis-coloring", "matching-oneeps",
                "matching-fast2eps"} <= set(by_name)
        for entry in entries:
            assert {"name", "problem", "paper", "guarantee",
                    "models"} <= set(entry)
        assert by_name["maxis-layers"]["problem"] == "maxis"
        assert by_name["matching-oneeps"]["models"] == ["LOCAL"]

    def test_json_registry_covers_cli_choices(self, capsys):
        main(["info", "--json"])
        entries = json.loads(capsys.readouterr().out)
        maxis = {e["cli"] for e in entries if e["problem"] == "maxis"}
        matching = {e["cli"] for e in entries if e["problem"] == "matching"}
        assert set(MAXIS_ALGORITHMS) <= maxis
        assert set(MATCHING_ALGORITHMS) <= matching


class TestMaxis:
    @pytest.mark.parametrize("algorithm", MAXIS_ALGORITHMS)
    def test_runs_and_reports_ratio(self, algorithm, capsys):
        code = main(["maxis", "--algorithm", algorithm, "--nodes", "18",
                     "--max-weight", "16", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ratio" in out
        assert "rounds" in out

    def test_skip_oracle(self, capsys):
        main(["maxis", "--nodes", "18", "--skip-oracle"])
        out = capsys.readouterr().out
        assert "ratio" not in out


class TestMatching:
    @pytest.mark.parametrize("algorithm", MATCHING_ALGORITHMS)
    def test_runs_each_algorithm(self, algorithm, capsys):
        code = main(["matching", "--algorithm", algorithm, "--nodes",
                     "16", "--seed", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "rounds" in out

    def test_export_csv(self, tmp_path, capsys):
        out_file = tmp_path / "row.csv"
        main(["matching", "--algorithm", "lines", "--nodes", "14",
              "--export", str(out_file)])
        assert out_file.exists()
        assert "algorithm" in out_file.read_text()

    def test_export_json(self, tmp_path, capsys):
        out_file = tmp_path / "row.json"
        main(["maxis", "--nodes", "12", "--export", str(out_file)])
        assert out_file.exists()

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            main(["matching", "--algorithm", "bogus"])
