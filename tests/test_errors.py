"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    AlgorithmContractViolation,
    BandwidthViolation,
    InvalidInstance,
    ReproError,
    RoundLimitExceeded,
    SimulationError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc_class", [
        SimulationError, RoundLimitExceeded, BandwidthViolation,
        InvalidInstance, AlgorithmContractViolation,
    ])
    def test_all_derive_from_repro_error(self, exc_class):
        assert issubclass(exc_class, ReproError)

    def test_simulation_family(self):
        assert issubclass(RoundLimitExceeded, SimulationError)
        assert issubclass(BandwidthViolation, SimulationError)


class TestRoundLimitExceeded:
    def test_carries_pending_nodes(self):
        err = RoundLimitExceeded(10, pending=(1, 2, 3))
        assert err.rounds == 10
        assert err.pending == (1, 2, 3)
        assert "3 nodes" in str(err)

    def test_message_without_pending(self):
        err = RoundLimitExceeded(5)
        assert "5 rounds" in str(err)
        assert "nodes" not in str(err)


class TestBandwidthViolation:
    def test_carries_route_and_sizes(self):
        err = BandwidthViolation("u", "v", bits=100, bandwidth=64)
        assert err.src == "u" and err.dst == "v"
        assert err.bits == 100 and err.bandwidth == 64
        assert "100 bits" in str(err)
