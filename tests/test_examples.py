"""Smoke tests: every example script runs end to end.

The examples assert their own guarantees internally (e.g. the §1.1
pitfall comparison), so executing ``main()`` is a real test.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", [
    "quickstart",
    "sensor_scheduling",
    "switch_scheduling",
    "spectrum_pairing",
    "figure1_walkthrough",
])
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"example {name} should print a report"


def test_examples_directory_complete():
    scripts = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))
    assert len(scripts) >= 5
    assert "quickstart" in scripts
