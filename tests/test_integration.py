"""Cross-module integration tests: full pipelines against exact oracles,
adversarial workloads, and failure injection."""


import networkx as nx
import pytest

from repro.analysis import approximation_ratio, summarize
from repro.congest import CONGEST, SynchronousNetwork
from repro.core import (
    congest_matching_1eps,
    fast_matching_2eps,
    fast_matching_weighted_2eps,
    local_matching_1eps,
    matching_local_ratio,
    maxis_local_ratio_coloring,
    maxis_local_ratio_layers,
    sequential_local_ratio,
)
from repro.errors import RoundLimitExceeded
from repro.graphs import (
    assign_edge_weights,
    assign_node_weights,
    caterpillar_graph,
    gnp_graph,
    max_degree,
    random_regular_graph,
    star_graph,
)
from repro.matching import (
    israeli_itai_matching,
    optimum_cardinality,
    optimum_weight,
)
from repro.mis import exact_mwis, mwis_weight


class TestMaxISPipelines:
    """All three MaxIS implementations agree on the guarantee."""

    @pytest.mark.parametrize("seed", range(3))
    def test_all_engines_beat_delta_bound(self, seed):
        g = assign_node_weights(gnp_graph(16, 0.25, seed=seed), 32,
                                seed=seed)
        optimum = mwis_weight(g, exact_mwis(g))
        delta = max(1, max_degree(g))
        sequential = mwis_weight(g, sequential_local_ratio(g))
        layered = maxis_local_ratio_layers(g, seed=seed).weight
        colored = maxis_local_ratio_coloring(g).weight
        for found in (sequential, layered, colored):
            assert delta * found >= optimum

    def test_distributed_usually_beats_greedy_on_adversarial(self):
        """Degree-correlated weights trap the degree-greedy heuristic;
        local ratio keeps its guarantee."""

        g = assign_node_weights(caterpillar_graph(8, 3), 64,
                                scheme="degree")
        optimum = mwis_weight(g, exact_mwis(g))
        layered = maxis_local_ratio_layers(g, seed=1).weight
        assert max_degree(g) * layered >= optimum

    def test_star_trap_all_engines(self):
        g = assign_node_weights(star_graph(8), 64, scheme="star-trap")
        optimum = mwis_weight(g, exact_mwis(g))
        for found in (
            mwis_weight(g, sequential_local_ratio(g)),
            maxis_local_ratio_layers(g, seed=2).weight,
            maxis_local_ratio_coloring(g).weight,
        ):
            assert max_degree(g) * found >= optimum


class TestMatchingPipelines:
    """Every matching algorithm meets its factor on shared workloads."""

    @pytest.mark.parametrize("seed", range(2))
    def test_factor_ladder(self, seed):
        g = assign_edge_weights(gnp_graph(18, 0.25, seed=seed), 16,
                                seed=seed + 1)
        opt_w = optimum_weight(g)
        opt_c = optimum_cardinality(g)

        two_approx = matching_local_ratio(g, method="layers", seed=seed)
        assert 2 * two_approx.weight >= opt_w

        fast = fast_matching_2eps(g, eps=0.5, seed=seed)
        assert 2.5 * len(fast.matching) >= opt_c

        weighted = fast_matching_weighted_2eps(g, eps=0.5, seed=seed)
        assert 2.5 * weighted.weight >= opt_w

        one_eps = local_matching_1eps(g, eps=0.5, seed=seed)
        assert 1.5 * (one_eps.cardinality
                      + len(one_eps.deactivated)) >= opt_c

    def test_weighted_algorithms_beat_unweighted_on_bimodal(self):
        """The separation the weighted algorithms exist for."""

        g = assign_edge_weights(gnp_graph(24, 0.2, seed=5), 1000,
                                scheme="bimodal", seed=6)
        unweighted, _ = israeli_itai_matching(g, seed=7)
        weighted = matching_local_ratio(g, method="layers", seed=7)
        # Maximal matching ignores weights; local ratio must capture at
        # least half the optimal weight, which bimodal workloads put on
        # few heavy edges.
        assert 2 * weighted.weight >= optimum_weight(g)
        ratio_weighted = approximation_ratio(optimum_weight(g),
                                             weighted.weight)
        assert ratio_weighted <= 2.0

    def test_round_hierarchy_on_regular_graph(self):
        """Fast algorithms' measured rounds stay below Algorithm 2 on
        the line graph for unweighted instances (the paper's point)."""

        g = random_regular_graph(4, 32, seed=3)
        slow = matching_local_ratio(g, method="layers", seed=4)
        fast = fast_matching_2eps(g, eps=0.5, seed=4)
        assert fast.rounds <= 4 * max(1, slow.rounds)


class TestSeedStability:
    def test_approximation_ratios_are_stable(self):
        g = assign_node_weights(gnp_graph(14, 0.3, seed=9), 16, seed=10)
        optimum = mwis_weight(g, exact_mwis(g))
        ratios = []
        for seed in range(5):
            found = maxis_local_ratio_layers(g, seed=seed).weight
            ratios.append(approximation_ratio(optimum, found))
        stats = summarize(ratios)
        assert stats.maximum <= max_degree(g)
        assert stats.mean <= 2.0  # empirically far below Δ


class TestFailureInjection:
    def test_round_limit_surfaces_cleanly(self):
        g = gnp_graph(12, 0.3, seed=1)
        with pytest.raises(RoundLimitExceeded):
            maxis_local_ratio_layers(g, seed=1, max_rounds=1)

    def test_strict_congest_mode_runs_clean_for_algorithm_2(self):
        """Algorithm 2's messages are O(log n)-bit: strict CONGEST must
        not raise."""

        g = assign_node_weights(gnp_graph(20, 0.2, seed=2), 64, seed=3)
        net = SynchronousNetwork(g, model=CONGEST, seed=4, strict=True)
        result = maxis_local_ratio_layers(g, network=net)
        assert result.rounds > 0
        assert net.metrics.violations == 0

    def test_disconnected_graph_components_run_independently(self):
        g = nx.disjoint_union(gnp_graph(8, 0.4, seed=5),
                              gnp_graph(8, 0.4, seed=6))
        assign_node_weights(g, 16, seed=7)
        result = maxis_local_ratio_layers(g, seed=8)
        assert result.independent_set

    def test_self_contained_congest_1eps_small(self):
        g = gnp_graph(12, 0.3, seed=11)
        result = congest_matching_1eps(g, eps=1.0, seed=12)
        opt = optimum_cardinality(g)
        assert 2 * (result.cardinality + len(result.deactivated)) >= opt
