"""Moderate-scale smoke tests: the library must handle graphs well
beyond the unit-test sizes without blowing round budgets or wall-clock.
(The exact oracles are skipped here — guarantees are covered on small
instances; these tests establish that nothing is accidentally O(n²)
rounds or worse.)"""

import math

from repro.core import (
    fast_matching_2eps,
    maxis_local_ratio_layers,
    general_proposal_matching,
)
from repro.graphs import (
    assign_node_weights,
    check_independent_set,
    check_matching,
    gnp_graph,
    random_regular_graph,
)
from repro.mis import luby_mis


class TestScale:
    def test_luby_600_nodes(self):
        g = gnp_graph(600, 0.01, seed=1)
        mis, rounds = luby_mis(g, seed=2)
        check_independent_set(g, mis, require_maximal=True)
        assert rounds <= 8 * math.ceil(math.log2(600))

    def test_algorithm_2_600_nodes(self):
        g = assign_node_weights(gnp_graph(600, 0.01, seed=3), 1024,
                                scheme="log-uniform", seed=4)
        result = maxis_local_ratio_layers(g, seed=5)
        check_independent_set(g, result.independent_set)
        # Theorem 2.3 with very generous constants.
        assert result.rounds <= 40 * math.ceil(math.log2(600)) * 11

    def test_fast_matching_500_nodes(self):
        g = random_regular_graph(4, 500, seed=6)
        result = fast_matching_2eps(g, eps=0.5, seed=7)
        check_matching(g, [tuple(e) for e in result.matching])
        # At least a decent fraction of a perfect matching.
        assert len(result.matching) >= 500 // 4

    def test_proposal_500_nodes(self):
        g = gnp_graph(500, 0.012, seed=8)
        matching, rounds, _ = general_proposal_matching(g, eps=0.25,
                                                        seed=9)
        check_matching(g, [tuple(e) for e in matching])
        assert rounds <= 300
