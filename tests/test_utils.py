"""Unit tests for repro.utils."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.utils import (
    geometric_layers,
    ilog2,
    is_prime,
    log_star,
    mean,
    next_prime,
    stable_rng,
)


class TestStableRng:
    def test_same_inputs_same_stream(self):
        a = stable_rng(1, "x", 2)
        b = stable_rng(1, "x", 2)
        assert [a.random() for _ in range(5)] == [
            b.random() for _ in range(5)
        ]

    def test_different_parts_different_stream(self):
        a = stable_rng(1, "x")
        b = stable_rng(1, "y")
        assert [a.random() for _ in range(5)] != [
            b.random() for _ in range(5)
        ]

    def test_different_seed_different_stream(self):
        assert stable_rng(1).random() != stable_rng(2).random()

    def test_node_tuple_parts(self):
        a = stable_rng(0, (1, 2), 3)
        b = stable_rng(0, (1, 2), 3)
        assert a.random() == b.random()


class TestIlog2:
    @pytest.mark.parametrize("x,expected", [
        (1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (8, 3), (9, 4), (1024, 10),
    ])
    def test_values(self, x, expected):
        assert ilog2(x) == expected

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ilog2(0)

    @given(st.integers(min_value=1, max_value=10**9))
    def test_matches_ceiling_log(self, x):
        assert ilog2(x) == math.ceil(math.log2(x)) or x == 1


class TestLogStar:
    @pytest.mark.parametrize("x,expected", [
        (1, 0), (2, 1), (4, 2), (16, 3), (65536, 4),
    ])
    def test_tower_values(self, x, expected):
        assert log_star(x) == expected

    def test_monotone(self):
        values = [log_star(x) for x in (2, 4, 16, 256, 65536, 2.0**64)]
        assert values == sorted(values)


class TestPrimes:
    def test_is_prime_small(self):
        primes = [p for p in range(60) if is_prime(p)]
        assert primes == [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41,
                          43, 47, 53, 59]

    @given(st.integers(min_value=0, max_value=5000))
    def test_next_prime_is_prime_and_minimal(self, n):
        p = next_prime(n)
        assert is_prime(p)
        assert p >= max(2, n)
        for q in range(max(2, n), p):
            assert not is_prime(q)


class TestGeometricLayers:
    @pytest.mark.parametrize("w,layer", [
        (1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (8, 3), (9, 4),
    ])
    def test_layer_boundaries(self, w, layer):
        assert geometric_layers(w) == layer

    @given(st.integers(min_value=1, max_value=10**6))
    def test_layer_interval(self, w):
        """Layer i holds weights with 2^{i-1} < w <= 2^i (paper §2.2)."""

        i = geometric_layers(w)
        assert w <= 2 ** i
        if i > 0:
            assert w > 2 ** (i - 1)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_layers(0)


class TestMean:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])
